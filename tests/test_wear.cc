/** @file Tests for the wear-leveling substrate. */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hh"
#include "sim/experiment.hh"
#include "wear/horizontal.hh"
#include "wear/lifetime.hh"
#include "wear/segment_swap.hh"
#include "wear/start_gap.hh"

namespace ladder
{
namespace
{

TEST(StartGap, RemapIsInjectiveOverRegion)
{
    const std::uint64_t lines = 64;
    StartGapRemapper remap(0, lines, 4);
    // Drive many gap movements and check injectivity each epoch.
    for (int step = 0; step < 200; ++step) {
        std::set<Addr> seen;
        for (std::uint64_t l = 0; l < lines; ++l) {
            Addr phys = remap.remap(l * lineBytes);
            EXPECT_LT(phys, (lines + 1) * lineBytes);
            EXPECT_TRUE(seen.insert(phys).second)
                << "collision at step " << step << " line " << l;
        }
        remap.noteDataWrite(0);
        remap.noteDataWrite(0);
        remap.noteDataWrite(0);
        remap.noteDataWrite(0);
        remap.collectMoves();
    }
}

TEST(StartGap, GapNeverMapped)
{
    const std::uint64_t lines = 16;
    StartGapRemapper remap(0, lines, 1);
    for (int step = 0; step < 60; ++step) {
        Addr gapAddr = remap.gap() * lineBytes;
        for (std::uint64_t l = 0; l < lines; ++l)
            EXPECT_NE(remap.remap(l * lineBytes), gapAddr);
        remap.noteDataWrite(0);
        remap.collectMoves();
    }
}

TEST(StartGap, MovesAtConfiguredPeriod)
{
    StartGapRemapper remap(0, 32, 10);
    for (int i = 0; i < 9; ++i)
        remap.noteDataWrite(0);
    EXPECT_TRUE(remap.collectMoves().empty());
    remap.noteDataWrite(0);
    auto moves = remap.collectMoves();
    ASSERT_EQ(moves.size(), 1u);
    // The displaced line moves into the old gap slot.
    EXPECT_EQ(moves[0].to, remap.gap() * lineBytes + lineBytes);
}

TEST(StartGap, FullRevolutionAdvancesStart)
{
    const std::uint64_t lines = 8;
    StartGapRemapper remap(0, lines, 1);
    std::uint64_t start0 = remap.start();
    for (std::uint64_t i = 0; i <= lines; ++i) {
        remap.noteDataWrite(0);
        remap.collectMoves();
    }
    EXPECT_EQ(remap.start(), start0 + 1);
}

TEST(StartGap, OutsideRegionUntouched)
{
    StartGapRemapper remap(4096, 16, 4);
    EXPECT_EQ(remap.remap(0), 0u);
    EXPECT_EQ(remap.remap(100 * lineBytes * 1024), 6553600u);
}

TEST(StartGap, RotationMovesHotLineAcrossSlots)
{
    const std::uint64_t lines = 8;
    StartGapRemapper remap(0, lines, 1);
    std::set<Addr> physSeen;
    for (int i = 0; i < 2000; ++i) {
        physSeen.insert(remap.remap(0)); // logical line 0
        remap.noteDataWrite(0);
        remap.collectMoves();
    }
    // Logical line 0 visits every physical slot.
    EXPECT_EQ(physSeen.size(), lines + 1);
}

TEST(SegmentSwap, RemapIsInjective)
{
    SegmentSwapRemapper remap(0, 8, 4096 * 4, 100);
    std::set<Addr> seen;
    for (std::uint64_t l = 0; l < 8 * 4 * 64; ++l) {
        Addr phys = remap.remap(l * lineBytes);
        EXPECT_TRUE(seen.insert(phys).second);
    }
}

TEST(SegmentSwap, SwapEmitsCopiesForBothSegments)
{
    const std::uint64_t segBytes = 4096 * 2; // 2 pages
    SegmentSwapRemapper remap(0, 4, segBytes, 50);
    // Hammer segment 0 to make it hot.
    for (int i = 0; i < 50; ++i)
        remap.noteDataWrite(0);
    auto moves = remap.collectMoves();
    if (remap.swaps() > 0) {
        EXPECT_EQ(moves.size(), 2 * segBytes / lineBytes);
        // Every move is within the region.
        for (const auto &m : moves) {
            EXPECT_LT(m.from, 4 * segBytes);
            EXPECT_LT(m.to, 4 * segBytes);
        }
    }
}

TEST(SegmentSwap, MappingChangesAfterSwap)
{
    const std::uint64_t segBytes = 4096;
    SegmentSwapRemapper remap(0, 4, segBytes, 20);
    Addr before = remap.remap(0);
    for (int round = 0; round < 50 && remap.swaps() == 0; ++round) {
        for (int i = 0; i < 20; ++i)
            remap.noteDataWrite(before);
        remap.collectMoves();
        before = remap.remap(0);
    }
    EXPECT_GT(remap.swaps(), 0u);
    EXPECT_NE(remap.remap(0), 0u * lineBytes + 0);
}

TEST(Hwl, EncodeDecodeRoundTripAcrossRotations)
{
    auto layout = std::make_shared<MetadataLayout>(
        MemoryGeometry{}, 1000);
    auto inner = makeScheme(SchemeKind::LadderEst, CrossbarParams{},
                            layout, {});
    HorizontalWearScheme hwl(inner, 2);
    Rng rng(1);
    Addr addr = 64;
    for (int i = 0; i < 20; ++i) {
        hwl.noteWrite(addr); // advance rotation over time
        LineData data;
        for (auto &b : data)
            b = static_cast<std::uint8_t>(rng.nextBounded(256));
        LineData encoded = hwl.encodeData(addr, data);
        EXPECT_EQ(hwl.decodeData(addr, encoded), data);
    }
}

TEST(Hwl, RotationAdvancesEveryPeriod)
{
    auto layout = std::make_shared<MetadataLayout>(
        MemoryGeometry{}, 1000);
    auto inner = makeScheme(SchemeKind::Baseline, CrossbarParams{},
                            layout, {});
    HorizontalWearScheme hwl(inner, 3);
    Addr addr = 128;
    EXPECT_EQ(hwl.rotationOf(addr), 0u);
    hwl.noteWrite(addr);
    hwl.noteWrite(addr);
    EXPECT_EQ(hwl.rotationOf(addr), 0u);
    hwl.noteWrite(addr);
    EXPECT_EQ(hwl.rotationOf(addr), 1u);
    // Other lines are unaffected.
    EXPECT_EQ(hwl.rotationOf(addr + lineBytes), 0u);
}

TEST(Hwl, RotationMovesBytesToDifferentMats)
{
    auto layout = std::make_shared<MetadataLayout>(
        MemoryGeometry{}, 1000);
    auto inner = makeScheme(SchemeKind::Baseline, CrossbarParams{},
                            layout, {});
    HorizontalWearScheme hwl(inner, 1);
    LineData data = filledLine(0);
    data[0] = 0xff;
    LineData e0 = hwl.encodeData(0, data);
    hwl.noteWrite(0);
    LineData e1 = hwl.encodeData(0, data);
    EXPECT_EQ(e0[0], 0xff);
    EXPECT_EQ(e1[1], 0xff);
    EXPECT_EQ(e1[0], 0x00);
}

TEST(Lifetime, LeveledBeatsUnleveledForSkewedWrites)
{
    std::unordered_map<std::uint64_t, std::uint32_t> writes;
    writes[0] = 100'000; // one very hot page
    for (std::uint64_t p = 1; p < 100; ++p)
        writes[p] = 100;
    LifetimeEstimate est = estimateLifetime(writes, 1.0);
    EXPECT_GT(est.unevenness, 10.0);
    EXPECT_GT(est.leveledYears, est.unleveledYears);
}

TEST(Lifetime, ProportionalToWriteRate)
{
    std::unordered_map<std::uint64_t, std::uint32_t> writes;
    for (std::uint64_t p = 0; p < 64; ++p)
        writes[p] = 1000;
    LifetimeEstimate slow = estimateLifetime(writes, 2.0);
    LifetimeEstimate fast = estimateLifetime(writes, 1.0);
    EXPECT_NEAR(slow.leveledYears / fast.leveledYears, 2.0, 1e-9);
}

TEST(Lifetime, ExtraWritesCostLifetime)
{
    // Paper §6.4: LADDER's ~3% extra writes cost ~2.9% lifetime under
    // leveling.
    std::unordered_map<std::uint64_t, std::uint32_t> base, ladder;
    for (std::uint64_t p = 0; p < 128; ++p) {
        base[p] = 1000;
        ladder[p] = 1030;
    }
    LifetimeEstimate b = estimateLifetime(base, 1.0);
    LifetimeEstimate l = estimateLifetime(ladder, 1.0);
    EXPECT_NEAR(l.leveledYears / b.leveledYears, 1.0 / 1.03, 1e-3);
}

TEST(WearIntegration, StartGapPreservesSystemCorrectness)
{
    // Run a short timed simulation with Start-Gap installed and check
    // it completes with sane traffic (content integrity is enforced
    // by internal assertions and the read path).
    ExperimentConfig cfg;
    cfg.warmupInstr = 60'000;
    cfg.measureInstr = 30'000;
    cfg.cacheScale = 1.0 / 16.0;
    SystemConfig sys =
        makeSystemConfig(SchemeKind::LadderEst, "astar", cfg);
    System system(sys);
    // Level the first half of the data region.
    AddressMap map(sys.geometry);
    StartGapRemapper remap(0, map.totalPages() * 64 / 4, 20);
    system.setRemapper(&remap);
    SimResult r = system.run(cfg.warmupInstr, cfg.measureInstr);
    EXPECT_GT(r.ipc, 0.0);
    EXPECT_GT(r.dataWrites, 0u);
    EXPECT_GT(remap.gapMoves(), 0u);
}

} // namespace
} // namespace ladder
