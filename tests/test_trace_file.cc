/** @file Tests for trace recording and replay. */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <unistd.h>

#include "trace/trace_file.hh"
#include "trace/workloads.hh"

namespace ladder
{
namespace
{

std::string
tempTracePath(const char *tag)
{
    return std::string(::testing::TempDir()) + "ladder_trace_" + tag +
           ".bin";
}

TEST(TraceFile, RoundTripBitIdentical)
{
    WorkloadParams params = workloadByName("astar");
    SyntheticSource original(params);
    std::string path = tempTracePath("roundtrip");
    EXPECT_EQ(recordTrace(original, 500, path), 500u);

    // A fresh source with the same seed replays the same prefix.
    SyntheticSource reference(params);
    TraceFileSource replay(path);
    EXPECT_EQ(replay.records(), 500u);
    EXPECT_EQ(replay.footprintBytes(),
              reference.footprintBytes());
    for (int i = 0; i < 500; ++i) {
        TraceRecord a = reference.next();
        TraceRecord b = replay.next();
        EXPECT_EQ(a.lineAddr, b.lineAddr) << "record " << i;
        EXPECT_EQ(a.nonMemBefore, b.nonMemBefore);
        EXPECT_EQ(a.isWrite, b.isWrite);
        EXPECT_EQ(a.dependent, b.dependent);
        EXPECT_EQ(a.storeOffset, b.storeOffset);
        EXPECT_EQ(a.storeData, b.storeData);
    }
    std::remove(path.c_str());
}

TEST(TraceFile, ReplayLoops)
{
    WorkloadParams params = workloadByName("libq");
    SyntheticSource source(params);
    std::string path = tempTracePath("loops");
    recordTrace(source, 10, path);
    TraceFileSource replay(path);
    TraceRecord first = replay.next();
    for (int i = 0; i < 9; ++i)
        replay.next();
    EXPECT_EQ(replay.loops(), 1u);
    TraceRecord again = replay.next();
    EXPECT_EQ(again.lineAddr, first.lineAddr);
    std::remove(path.c_str());
}

TEST(TraceFile, RejectsGarbage)
{
    std::string path = tempTracePath("garbage");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    std::fputs("not a trace", f);
    std::fclose(f);
    EXPECT_THROW(TraceFileSource{path}, std::runtime_error);
    std::remove(path.c_str());
}

TEST(TraceFile, RejectsMissingFile)
{
    EXPECT_THROW(TraceFileSource{"/nonexistent/trace.bin"},
                 std::runtime_error);
}

TEST(TraceFile, TruncatedBodyDetected)
{
    WorkloadParams params = workloadByName("mcf");
    SyntheticSource source(params);
    std::string path = tempTracePath("trunc");
    recordTrace(source, 100, path);
    // Chop the file.
    std::FILE *f = std::fopen(path.c_str(), "rb+");
    std::fseek(f, 0, SEEK_END);
    long size = std::ftell(f);
    std::fclose(f);
    ASSERT_EQ(truncate(path.c_str(), size - 40), 0);
    EXPECT_THROW(TraceFileSource{path}, std::runtime_error);
    std::remove(path.c_str());
}

} // namespace
} // namespace ladder
