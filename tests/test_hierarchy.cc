/** @file Tests for the three-level cache hierarchy. */

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <unordered_map>

#include "cache/hierarchy.hh"
#include "common/rng.hh"

namespace ladder
{
namespace
{

HierarchyParams
tinyParams(unsigned cores = 1)
{
    HierarchyParams p;
    p.l1 = CacheParams{4 * lineBytes, 2};
    p.l2 = CacheParams{16 * lineBytes, 2};
    p.l3 = CacheParams{64 * lineBytes, 4};
    p.cores = cores;
    return p;
}

LineData
byteLine(std::uint8_t v)
{
    return filledLine(v);
}

TEST(Hierarchy, FillThenReadHitsL1)
{
    CacheHierarchy h(tinyParams());
    std::vector<Writeback> wbs;
    h.fill(0, 0, byteLine(5), wbs);
    auto hit = h.read(0, 0, wbs);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->data, byteLine(5));
    EXPECT_EQ(hit->latencyNs, h.params().l1HitNs);
}

TEST(Hierarchy, MissReturnsNullopt)
{
    CacheHierarchy h(tinyParams());
    std::vector<Writeback> wbs;
    EXPECT_FALSE(h.read(0, 4096, wbs).has_value());
}

TEST(Hierarchy, L2AndL3HitLatencies)
{
    CacheHierarchy h(tinyParams());
    std::vector<Writeback> wbs;
    h.fill(0, 0, byteLine(1), wbs);
    // Evict from L1 by filling its set (4-line L1, 2 sets).
    unsigned l1Sets = h.l1(0).sets();
    h.fill(0, (0 + 1 * l1Sets) * lineBytes, byteLine(2), wbs);
    h.fill(0, (0 + 2 * l1Sets) * lineBytes, byteLine(3), wbs);
    ASSERT_FALSE(h.l1(0).contains(0));
    auto hit = h.read(0, 0, wbs);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->latencyNs, h.params().l2HitNs);
    // Promoted back into L1.
    EXPECT_TRUE(h.l1(0).contains(0));
}

TEST(Hierarchy, StoreMakesLineDirtyInL1)
{
    CacheHierarchy h(tinyParams());
    std::vector<Writeback> wbs;
    h.fill(0, 0, byteLine(0), wbs);
    std::uint8_t bytes[8] = {9, 9, 9, 9, 9, 9, 9, 9};
    auto lat = h.write(0, 0, 8, bytes, wbs);
    ASSERT_TRUE(lat.has_value());
    EXPECT_TRUE(h.l1(0).isDirty(0));
    auto hit = h.read(0, 0, wbs);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->data[8], 9);
    EXPECT_EQ(hit->data[0], 0);
}

TEST(Hierarchy, StoreMissReturnsNullopt)
{
    CacheHierarchy h(tinyParams());
    std::vector<Writeback> wbs;
    std::uint8_t bytes[8] = {};
    EXPECT_FALSE(h.write(0, 0, 0, bytes, wbs).has_value());
}

TEST(Hierarchy, DirtyDataSurvivesEvictionCascade)
{
    CacheHierarchy h(tinyParams());
    std::vector<Writeback> wbs;
    h.fill(0, 0, byteLine(0), wbs);
    std::uint8_t bytes[8] = {7, 7, 7, 7, 7, 7, 7, 7};
    ASSERT_TRUE(h.write(0, 0, 0, bytes, wbs).has_value());
    // Push the dirty line out of L1 (same set traffic).
    unsigned l1Sets = h.l1(0).sets();
    for (unsigned n = 1; n <= 2; ++n)
        h.fill(0, n * l1Sets * lineBytes, byteLine(9), wbs);
    ASSERT_FALSE(h.l1(0).contains(0));
    // The dirty data must be readable (from L2) unchanged.
    auto hit = h.read(0, 0, wbs);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->data[0], 7);
}

TEST(Hierarchy, FillNeverClobbersNewerDirtyData)
{
    // Regression: a late fill (e.g. a second outstanding miss) must
    // not overwrite a line a store already modified.
    CacheHierarchy h(tinyParams());
    std::vector<Writeback> wbs;
    h.fill(0, 0, byteLine(1), wbs);
    std::uint8_t bytes[8] = {42, 42, 42, 42, 42, 42, 42, 42};
    ASSERT_TRUE(h.write(0, 0, 0, bytes, wbs).has_value());
    h.fill(0, 0, byteLine(1), wbs); // stale duplicate fill
    auto hit = h.read(0, 0, wbs);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->data[0], 42);
}

TEST(Hierarchy, L3EvictionsReachMemory)
{
    CacheHierarchy h(tinyParams());
    std::vector<Writeback> wbs;
    std::uint8_t bytes[8] = {3, 3, 3, 3, 3, 3, 3, 3};
    // Dirty many distinct lines; eventually L3 must evict dirty data.
    for (unsigned i = 0; i < 200; ++i) {
        Addr addr = i * lineBytes;
        h.fill(0, addr, byteLine(0), wbs);
        auto lat = h.write(0, addr, 0, bytes, wbs);
        ASSERT_TRUE(lat.has_value());
    }
    EXPECT_FALSE(wbs.empty());
    for (auto &wb : wbs)
        EXPECT_EQ(wb.second[0], 3);
}

TEST(Hierarchy, FlushAllDrainsEveryDirtyLine)
{
    CacheHierarchy h(tinyParams());
    std::vector<Writeback> wbs;
    std::uint8_t bytes[8] = {5, 5, 5, 5, 5, 5, 5, 5};
    std::set<Addr> dirtied;
    for (unsigned i = 0; i < 12; ++i) {
        Addr addr = i * lineBytes;
        h.fill(0, addr, byteLine(0), wbs);
        ASSERT_TRUE(h.write(0, addr, 0, bytes, wbs).has_value());
        dirtied.insert(addr);
    }
    auto flushed = h.flushAll();
    for (auto &wb : flushed)
        wbs.push_back(wb);
    std::set<Addr> seen;
    for (auto &wb : wbs) {
        if (dirtied.count(wb.first)) {
            EXPECT_EQ(wb.second[0], 5);
            seen.insert(wb.first);
        }
    }
    EXPECT_EQ(seen, dirtied);
}

TEST(Hierarchy, CoresHavePrivateL1L2SharedL3)
{
    CacheHierarchy h(tinyParams(2));
    std::vector<Writeback> wbs;
    h.fill(0, 0, byteLine(1), wbs);
    // Core 1's private levels missed, but L3 is shared.
    EXPECT_FALSE(h.l1(1).contains(0));
    EXPECT_FALSE(h.l2(1).contains(0));
    auto hit = h.read(1, 0, wbs);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->latencyNs, h.params().l3HitNs);
}

TEST(Hierarchy, RandomTrafficContentMatchesReference)
{
    CacheHierarchy h(tinyParams());
    std::unordered_map<Addr, LineData> memory; // reference backing
    std::vector<Writeback> wbs;
    Rng rng(13);
    auto backingOf = [&](Addr addr) -> LineData {
        auto it = memory.find(addr);
        return it == memory.end() ? filledLine(0) : it->second;
    };
    for (int i = 0; i < 3000; ++i) {
        Addr addr = rng.nextBounded(64) * lineBytes;
        wbs.clear();
        if (rng.nextBool(0.4)) {
            std::uint8_t bytes[8];
            for (auto &b : bytes)
                b = static_cast<std::uint8_t>(rng.nextBounded(256));
            unsigned offset =
                static_cast<unsigned>(rng.nextBounded(8)) * 8;
            if (!h.write(0, addr, offset, bytes, wbs)) {
                h.fill(0, addr, backingOf(addr), wbs);
                ASSERT_TRUE(
                    h.write(0, addr, offset, bytes, wbs));
            }
        } else {
            auto hit = h.read(0, addr, wbs);
            if (!hit) {
                h.fill(0, addr, backingOf(addr), wbs);
                hit = h.read(0, addr, wbs);
                ASSERT_TRUE(hit.has_value());
            }
        }
        for (auto &wb : wbs)
            memory[wb.first] = wb.second;
    }
    // Drain and compare every line against a flat replay.
    for (auto &wb : h.flushAll())
        memory[wb.first] = wb.second;
    // Re-run the same traffic on a flat model to get expectations.
    std::unordered_map<Addr, LineData> flat;
    Rng rng2(13);
    for (int i = 0; i < 3000; ++i) {
        Addr addr = rng2.nextBounded(64) * lineBytes;
        if (rng2.nextBool(0.4)) {
            std::uint8_t bytes[8];
            for (auto &b : bytes)
                b = static_cast<std::uint8_t>(rng2.nextBounded(256));
            unsigned offset =
                static_cast<unsigned>(rng2.nextBounded(8)) * 8;
            auto &line = flat.try_emplace(addr, filledLine(0))
                             .first->second;
            std::memcpy(line.data() + offset, bytes, 8);
        }
    }
    for (auto &entry : flat) {
        ASSERT_TRUE(memory.count(entry.first))
            << "addr " << entry.first;
        EXPECT_EQ(memory[entry.first], entry.second)
            << "addr " << entry.first;
    }
}

} // namespace
} // namespace ladder
