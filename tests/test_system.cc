/** @file Full-system integration tests. */

#include <gtest/gtest.h>

#include "sim/experiment.hh"
#include "sim/system.hh"

namespace ladder
{
namespace
{

ExperimentConfig
quickConfig()
{
    ExperimentConfig cfg;
    cfg.warmupInstr = 60'000;
    cfg.measureInstr = 40'000;
    // Shrink L2/L3 and working sets so caches reach steady state
    // (and writebacks flow) within the short windows.
    cfg.cacheScale = 1.0 / 16.0;
    return cfg;
}

class SystemScheme : public ::testing::TestWithParam<SchemeKind>
{
};

TEST_P(SystemScheme, RunsToCompletion)
{
    SimResult r = runOne(GetParam(), "astar", quickConfig());
    EXPECT_GT(r.ipc, 0.0);
    EXPECT_LT(r.ipc, 4.0);
    EXPECT_GT(r.dataReads, 100u);
    EXPECT_GT(r.dataWrites, 10u);
    EXPECT_GT(r.avgReadLatencyNs, 20.0);
    EXPECT_GE(r.avgWriteTwrNs, 29.0);
    EXPECT_LE(r.avgWriteTwrNs, 2 * 658.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, SystemScheme,
    ::testing::Values(SchemeKind::Baseline, SchemeKind::Location,
                      SchemeKind::SplitReset, SchemeKind::Blp,
                      SchemeKind::LadderBasic, SchemeKind::LadderEst,
                      SchemeKind::LadderHybrid, SchemeKind::Oracle));

TEST(System, BaselineWritesAtWorstCase)
{
    SimResult r = runOne(SchemeKind::Baseline, "astar", quickConfig());
    EXPECT_NEAR(r.avgWriteTwrNs, 658.0, 1.0);
}

TEST(System, SchemesBeatBaseline)
{
    ExperimentConfig cfg = quickConfig();
    SimResult base = runOne(SchemeKind::Baseline, "lbm", cfg);
    for (SchemeKind kind :
         {SchemeKind::LadderEst, SchemeKind::LadderHybrid,
          SchemeKind::Oracle}) {
        SimResult r = runOne(kind, "lbm", cfg);
        EXPECT_GT(speedupOver(r, base), 1.0) << schemeKindName(kind);
        EXPECT_LT(r.avgWriteTwrNs, base.avgWriteTwrNs);
    }
}

TEST(System, OracleMatchesOrBeatsEveryScheme)
{
    ExperimentConfig cfg = quickConfig();
    SimResult oracle = runOne(SchemeKind::Oracle, "astar", cfg);
    for (SchemeKind kind :
         {SchemeKind::LadderBasic, SchemeKind::LadderEst,
          SchemeKind::LadderHybrid}) {
        SimResult r = runOne(kind, "astar", cfg);
        EXPECT_LE(oracle.avgWriteTwrNs, r.avgWriteTwrNs + 5.0)
            << schemeKindName(kind);
    }
}

TEST(System, DemandTrafficIndependentOfScheme)
{
    // The cache-filtered demand stream is timing-independent, so all
    // schemes see (nearly) the same demand reads and writes.
    ExperimentConfig cfg = quickConfig();
    SimResult a = runOne(SchemeKind::Baseline, "cannl", cfg);
    SimResult b = runOne(SchemeKind::LadderHybrid, "cannl", cfg);
    double readRatio = static_cast<double>(b.dataReads) /
                       static_cast<double>(a.dataReads);
    double writeRatio = static_cast<double>(b.dataWrites) /
                        static_cast<double>(a.dataWrites);
    EXPECT_NEAR(readRatio, 1.0, 0.05);
    EXPECT_NEAR(writeRatio, 1.0, 0.10);
}

TEST(System, MetadataTrafficOnlyForLadderSchemes)
{
    ExperimentConfig cfg = quickConfig();
    for (SchemeKind kind :
         {SchemeKind::Baseline, SchemeKind::SplitReset,
          SchemeKind::Blp, SchemeKind::Oracle}) {
        SimResult r = runOne(kind, "astar", cfg);
        EXPECT_EQ(r.metadataReads, 0u) << schemeKindName(kind);
        EXPECT_EQ(r.smbReads, 0u) << schemeKindName(kind);
    }
    SimResult basic = runOne(SchemeKind::LadderBasic, "astar", cfg);
    EXPECT_GT(basic.metadataReads, 0u);
    EXPECT_EQ(basic.smbReads, basic.dataWrites);
    SimResult est = runOne(SchemeKind::LadderEst, "astar", cfg);
    EXPECT_EQ(est.smbReads, 0u);
    EXPECT_LT(est.metadataReads, basic.metadataReads);
}

TEST(System, EstEstimateUpperBoundsOwnContent)
{
    SimResult est =
        runOne(SchemeKind::LadderEstNoShift, "astar", quickConfig());
    EXPECT_GE(est.estCounterDiffMean, 0.0);
    EXPECT_GT(est.estimatedCwMean, 0.0);
}

TEST(System, MixRunsFourCores)
{
    ExperimentConfig cfg = quickConfig();
    cfg.warmupInstr = 30'000;
    cfg.measureInstr = 20'000;
    SimResult r = runOne(SchemeKind::LadderHybrid, "mix-1", cfg);
    EXPECT_EQ(r.coreIpc.size(), 4u);
    for (double ipc : r.coreIpc) {
        EXPECT_GT(ipc, 0.0);
        EXPECT_LT(ipc, 4.0);
    }
}

TEST(System, DeterministicAcrossRuns)
{
    ExperimentConfig cfg = quickConfig();
    SimResult a = runOne(SchemeKind::LadderEst, "libq", cfg);
    SimResult b = runOne(SchemeKind::LadderEst, "libq", cfg);
    EXPECT_EQ(a.dataReads, b.dataReads);
    EXPECT_EQ(a.dataWrites, b.dataWrites);
    EXPECT_DOUBLE_EQ(a.ipc, b.ipc);
    EXPECT_DOUBLE_EQ(a.avgReadLatencyNs, b.avgReadLatencyNs);
}

TEST(System, EnergyAccountingPositiveAndOrdered)
{
    ExperimentConfig cfg = quickConfig();
    SimResult base = runOne(SchemeKind::Baseline, "lbm", cfg);
    SimResult oracle = runOne(SchemeKind::Oracle, "lbm", cfg);
    EXPECT_GT(base.writeEnergyPj, 0.0);
    EXPECT_GT(base.readEnergyPj, 0.0);
    // Shorter writes burn less array energy.
    EXPECT_LT(oracle.writeEnergyPj, base.writeEnergyPj);
}

TEST(System, RangeShrinkReducesBenefit)
{
    ExperimentConfig cfg = quickConfig();
    SimResult base = runOne(SchemeKind::Baseline, "astar", cfg);
    SimResult nominal = runOne(SchemeKind::LadderHybrid, "astar", cfg);
    ExperimentConfig shrunk = cfg;
    shrunk.rangeShrink = 2.0;
    SimResult baseS = runOne(SchemeKind::Baseline, "astar", shrunk);
    SimResult hybridS =
        runOne(SchemeKind::LadderHybrid, "astar", shrunk);
    double gainNominal = speedupOver(nominal, base) - 1.0;
    double gainShrunk = speedupOver(hybridS, baseS) - 1.0;
    EXPECT_GT(gainNominal, 0.0);
    EXPECT_GT(gainShrunk, 0.0);
    EXPECT_LT(gainShrunk, gainNominal);
}

TEST(System, FnwOffMeansNoFlips)
{
    // Whole-line FNW flips are rare under incremental store traffic
    // (a realistic property); with FNW disabled they must be exactly
    // zero and energy accounting must still work.
    ExperimentConfig without = quickConfig();
    without.fnwMode = FnwMode::Off;
    SimResult b = runOne(SchemeKind::Baseline, "mcf", without);
    EXPECT_EQ(b.fnwFlips, 0.0);
    EXPECT_GT(b.writeEnergyPj, 0.0);
}

TEST(System, StatsDumpHasContent)
{
    SystemConfig cfg =
        makeSystemConfig(SchemeKind::LadderEst, "astar",
                         quickConfig());
    System system(cfg);
    system.run(20'000, 20'000);
    std::ostringstream os;
    system.dumpStats(os);
    EXPECT_NE(os.str().find("ctrl0.data_reads"), std::string::npos);
    EXPECT_NE(os.str().find("ctrl1.write_service_ns"),
              std::string::npos);
}

} // namespace
} // namespace ladder
