/** @file Tests for one cache level. */

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "common/rng.hh"

namespace ladder
{
namespace
{

LineData
byteLine(std::uint8_t v)
{
    return filledLine(v);
}

Cache
tiny()
{
    // 2 sets x 2 ways.
    return Cache(CacheParams{4 * lineBytes, 2}, "tiny");
}

Addr
inSet(unsigned set, unsigned n, unsigned sets)
{
    return static_cast<Addr>(set + n * sets) * lineBytes;
}

TEST(Cache, MissThenHit)
{
    Cache c = tiny();
    EXPECT_EQ(c.probe(0), nullptr);
    c.insert(0, byteLine(1), false);
    LineData *line = c.probe(0);
    ASSERT_NE(line, nullptr);
    EXPECT_EQ((*line)[0], 1);
    EXPECT_EQ(c.hits.value(), 1.0);
    EXPECT_EQ(c.misses.value(), 1.0);
}

TEST(Cache, LruEviction)
{
    Cache c = tiny();
    unsigned sets = c.sets();
    c.insert(inSet(0, 0, sets), byteLine(1), false);
    c.insert(inSet(0, 1, sets), byteLine(2), false);
    c.probe(inSet(0, 0, sets)); // refresh line 0
    CacheVictim v = c.insert(inSet(0, 2, sets), byteLine(3), false);
    ASSERT_TRUE(v.valid);
    EXPECT_EQ(v.addr, inSet(0, 1, sets)); // LRU evicted
    EXPECT_FALSE(v.dirty);
    EXPECT_TRUE(c.contains(inSet(0, 0, sets)));
}

TEST(Cache, DirtyVictimCarriesData)
{
    Cache c = tiny();
    unsigned sets = c.sets();
    c.insert(inSet(1, 0, sets), byteLine(7), true);
    c.insert(inSet(1, 1, sets), byteLine(8), false);
    CacheVictim v = c.insert(inSet(1, 2, sets), byteLine(9), false);
    ASSERT_TRUE(v.valid);
    EXPECT_TRUE(v.dirty);
    EXPECT_EQ(v.data, byteLine(7));
    EXPECT_EQ(c.dirtyEvictions.value(), 1.0);
}

TEST(Cache, InsertOnExistingMergesDirty)
{
    Cache c = tiny();
    c.insert(0, byteLine(1), true);
    CacheVictim v = c.insert(0, byteLine(2), false);
    EXPECT_FALSE(v.valid); // refresh, no eviction
    EXPECT_TRUE(c.isDirty(0));
    EXPECT_EQ((*c.probe(0))[0], 2);
}

TEST(Cache, MarkDirty)
{
    Cache c = tiny();
    c.insert(0, byteLine(1), false);
    EXPECT_FALSE(c.isDirty(0));
    c.markDirty(0);
    EXPECT_TRUE(c.isDirty(0));
}

TEST(Cache, InvalidateDropsSilently)
{
    Cache c = tiny();
    c.insert(0, byteLine(1), true);
    c.invalidate(0);
    EXPECT_FALSE(c.contains(0));
    // Invalidate of an absent line is a no-op.
    c.invalidate(64 * 50);
}

TEST(Cache, FlushReturnsOnlyDirty)
{
    Cache c = tiny();
    unsigned sets = c.sets();
    c.insert(inSet(0, 0, sets), byteLine(1), true);
    c.insert(inSet(1, 0, sets), byteLine(2), false);
    auto dirty = c.flush();
    ASSERT_EQ(dirty.size(), 1u);
    EXPECT_EQ(dirty[0].data, byteLine(1));
    EXPECT_FALSE(c.contains(inSet(0, 0, sets)));
}

TEST(Cache, ProbeUpdatesRecencyButContainsDoesNot)
{
    Cache c = tiny();
    unsigned sets = c.sets();
    c.insert(inSet(0, 0, sets), byteLine(1), false);
    c.insert(inSet(0, 1, sets), byteLine(2), false);
    // contains() must not refresh recency.
    EXPECT_TRUE(c.contains(inSet(0, 0, sets)));
    CacheVictim v = c.insert(inSet(0, 2, sets), byteLine(3), false);
    EXPECT_EQ(v.addr, inSet(0, 0, sets));
}

TEST(Cache, StressRandomAgainstReferenceModel)
{
    // Content correctness under random traffic vs a map-based model.
    Cache c(CacheParams{64 * lineBytes, 4}, "stress");
    std::unordered_map<Addr, LineData> reference;
    Rng rng(11);
    for (int i = 0; i < 4000; ++i) {
        Addr addr = rng.nextBounded(256) * lineBytes;
        if (rng.nextBool(0.5)) {
            LineData data = byteLine(
                static_cast<std::uint8_t>(rng.nextBounded(256)));
            c.insert(addr, data, true);
            reference[addr] = data;
        } else if (LineData *line = c.probe(addr)) {
            ASSERT_TRUE(reference.count(addr));
            EXPECT_EQ(*line, reference[addr]) << "addr " << addr;
        }
    }
}

} // namespace
} // namespace ladder
