/**
 * @file
 * Tests for LADDER's partial-counter machinery, including the central
 * safety property: the estimated C_w is always an upper bound on the
 * true worst-mat LRS count (paper Eq. 1-2).
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "schemes/partial_counter.hh"
#include "trace/data_patterns.hh"

namespace ladder
{
namespace
{

TEST(PartialCounter, Encode2Ranges)
{
    EXPECT_EQ(encodePartial2(0), 0u);
    EXPECT_EQ(encodePartial2(1), 0u);
    EXPECT_EQ(encodePartial2(2), 1u);
    EXPECT_EQ(encodePartial2(3), 1u);
    EXPECT_EQ(encodePartial2(4), 2u);
    EXPECT_EQ(encodePartial2(5), 2u);
    EXPECT_EQ(encodePartial2(6), 3u);
    EXPECT_EQ(encodePartial2(8), 3u);
}

TEST(PartialCounter, Decode2Values)
{
    EXPECT_EQ(decodePartial2(0), 1u);
    EXPECT_EQ(decodePartial2(1), 3u);
    EXPECT_EQ(decodePartial2(2), 5u);
    EXPECT_EQ(decodePartial2(3), 8u);
}

TEST(PartialCounter, Encode1Ranges)
{
    for (unsigned v = 0; v <= 5; ++v)
        EXPECT_EQ(encodePartial1(v), 0u) << v;
    for (unsigned v = 6; v <= 8; ++v)
        EXPECT_EQ(encodePartial1(v), 1u) << v;
    EXPECT_EQ(decodePartial1(0), 5u);
    EXPECT_EQ(decodePartial1(1), 8u);
}

class QuantizationSafety : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(QuantizationSafety, DecodeCoversEncodeInput)
{
    unsigned actual = GetParam();
    // The conservative decode of any encodable count covers it.
    EXPECT_GE(decodePartial2(encodePartial2(actual)), actual);
    EXPECT_GE(decodePartial1(encodePartial1(actual)), actual);
}

INSTANTIATE_TEST_SUITE_P(AllCounts, QuantizationSafety,
                         ::testing::Range(0u, 9u));

TEST(PartialCounter, PackExtractsSubgroupMaxima)
{
    LineData line = filledLine(0x00);
    line[0] = 0x0f;  // subgroup 0: worst 4 -> code 2
    line[17] = 0xff; // subgroup 1: worst 8 -> code 3
    line[33] = 0x01; // subgroup 2: worst 1 -> code 0
    line[50] = 0x07; // subgroup 3: worst 3 -> code 1
    std::uint8_t packed = packPartialCounters2(line);
    EXPECT_EQ((packed >> 0) & 3, 2u);
    EXPECT_EQ((packed >> 2) & 3, 3u);
    EXPECT_EQ((packed >> 4) & 3, 0u);
    EXPECT_EQ((packed >> 6) & 3, 1u);
}

TEST(PartialCounter, Pack1ExtractsHalfLineMaxima)
{
    LineData line = filledLine(0x00);
    line[5] = 0xff;  // first half: 8 -> 1
    line[40] = 0x0f; // second half: 4 -> 0
    std::uint8_t packed = packPartialCounters1(line);
    EXPECT_EQ(packed & 1, 1u);
    EXPECT_EQ((packed >> 1) & 1, 0u);
}

/** The Eq. 1-2 safety property on arbitrary content. */
class EstimateSafety : public ::testing::TestWithParam<std::uint64_t>
{
  protected:
    /** True C_w: max over mats of the per-mat popcount sum. */
    static unsigned
    trueCw(const std::array<LineData, 64> &blocks)
    {
        unsigned best = 0;
        for (unsigned mat = 0; mat < 64; ++mat) {
            unsigned sum = 0;
            for (const auto &block : blocks)
                sum += popcount8(block[mat]);
            best = std::max(best, sum);
        }
        return best;
    }
};

TEST_P(EstimateSafety, EstimateUpperBoundsTruth)
{
    Rng rng(GetParam());
    PatternMix mix{1, 1, 1, 1, 1, 1};
    DataPatternModel model(mix);
    for (int page = 0; page < 10; ++page) {
        std::array<LineData, 64> blocks;
        std::array<std::uint8_t, 64> packed2{};
        std::array<std::uint8_t, 64> packed1{};
        for (unsigned b = 0; b < 64; ++b) {
            blocks[b] = model.generateLine(rng);
            packed2[b] = packPartialCounters2(blocks[b]);
            packed1[b] = packPartialCounters1(blocks[b]);
        }
        unsigned truth = trueCw(blocks);
        EXPECT_GE(estimateCw2(packed2), truth);
        EXPECT_GE(estimateCw1(packed1), truth);
    }
}

TEST_P(EstimateSafety, EstimateUpperBoundsAdversarialContent)
{
    // Fully random bytes (denser and nastier than app content).
    Rng rng(GetParam() + 500);
    std::array<LineData, 64> blocks;
    std::array<std::uint8_t, 64> packed2{};
    for (unsigned b = 0; b < 64; ++b) {
        for (auto &byte : blocks[b])
            byte = static_cast<std::uint8_t>(rng.nextBounded(256));
        packed2[b] = packPartialCounters2(blocks[b]);
    }
    EXPECT_GE(estimateCw2(packed2), trueCw(blocks));
}

INSTANTIATE_TEST_SUITE_P(Seeds, EstimateSafety,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

TEST(PartialCounter, EstimateBounds)
{
    std::array<std::uint8_t, 64> zeros{};
    // All-'00' counters decode to 1 each: estimate 64.
    EXPECT_EQ(estimateCw2(zeros), 64u);
    std::array<std::uint8_t, 64> maxed{};
    maxed.fill(0xff);
    EXPECT_EQ(estimateCw2(maxed), 512u);
    std::array<std::uint8_t, 64> low{};
    EXPECT_EQ(estimateCw1(low), 64u * 5);
    std::array<std::uint8_t, 64> high{};
    high.fill(0x03);
    EXPECT_EQ(estimateCw1(high), 64u * 8);
}

} // namespace
} // namespace ladder
