/** @file Tests for the write timing tables and the power table. */

#include <gtest/gtest.h>

#include "circuit/fastmodel.hh"
#include "reram/latency_surface.hh"
#include "reram/timing_tables.hh"

namespace ladder
{
namespace
{

const TimingModel &
model()
{
    static const TimingModel &m = cachedTimingModel(CrossbarParams{});
    return m;
}

TEST(TimingTable, EnvelopeMatchesLaw)
{
    const TimingModel &m = model();
    EXPECT_NEAR(m.ladder.worstLatencyNs(), 658.0, 1.0);
    EXPECT_GE(m.ladder.bestLatencyNs(), 29.0);
    EXPECT_LT(m.ladder.bestLatencyNs(), 300.0);
}

TEST(TimingTable, MonotoneInAllDimensions)
{
    const TimingModel &m = model();
    const WriteTimingTable &t = m.ladder;
    for (unsigned wb = 0; wb + 1 < t.wlBuckets(); ++wb)
        for (unsigned bb = 0; bb < t.blBuckets(); ++bb)
            for (unsigned cb = 0; cb < t.contentBuckets(); ++cb)
                EXPECT_LE(t.at(wb, bb, cb).latencyNs,
                          t.at(wb + 1, bb, cb).latencyNs);
    for (unsigned wb = 0; wb < t.wlBuckets(); ++wb)
        for (unsigned bb = 0; bb + 1 < t.blBuckets(); ++bb)
            for (unsigned cb = 0; cb < t.contentBuckets(); ++cb)
                EXPECT_LE(t.at(wb, bb, cb).latencyNs,
                          t.at(wb, bb + 1, cb).latencyNs);
    for (unsigned wb = 0; wb < t.wlBuckets(); ++wb)
        for (unsigned bb = 0; bb < t.blBuckets(); ++bb)
            for (unsigned cb = 0; cb + 1 < t.contentBuckets(); ++cb)
                EXPECT_LE(t.at(wb, bb, cb).latencyNs,
                          t.at(wb, bb, cb + 1).latencyNs);
}

TEST(TimingTable, LookupAlwaysSafe)
{
    // Property: for any operating point, the bucketed lookup must be
    // at least the latency the circuit model demands at that point.
    const TimingModel &m = model();
    SneakPathModel fast(m.params);
    for (unsigned wl : {0u, 100u, 300u, 511u}) {
        for (unsigned slot : {0u, 20u, 63u}) {
            for (unsigned count : {0u, 64u, 200u, 448u, 512u}) {
                ResetCondition cond{wl, slot, count,
                                    (unsigned)m.params.rows};
                double needed =
                    m.law.latencyNs(fast.evaluate(cond).minDropVolts);
                double granted =
                    m.ladder
                        .lookup(wl, slot * 8 + 7, count)
                        .latencyNs;
                EXPECT_GE(granted + 1e-9, needed)
                    << "wl=" << wl << " slot=" << slot
                    << " count=" << count;
            }
        }
    }
}

TEST(TimingTable, ContentRoundsUp)
{
    const TimingModel &m = model();
    // A count exactly on a bucket boundary (e.g. 64) must use the
    // bucket whose worst-case corner covers it (bucket 0 covers 1-64).
    const TimingEntry &at64 = m.ladder.lookup(511, 511, 64);
    const TimingEntry &at65 = m.ladder.lookup(511, 511, 65);
    EXPECT_EQ(at64.latencyNs, m.ladder.at(7, 7, 0).latencyNs);
    EXPECT_EQ(at65.latencyNs, m.ladder.at(7, 7, 1).latencyNs);
    // Zero content also uses bucket 0.
    EXPECT_EQ(m.ladder.lookup(511, 511, 0).latencyNs,
              m.ladder.at(7, 7, 0).latencyNs);
    // Content beyond the maximum clamps to the last bucket.
    EXPECT_EQ(m.ladder.lookup(511, 511, 100000).latencyNs,
              m.ladder.at(7, 7, 7).latencyNs);
}

TEST(TimingTable, StorageMatchesPaper)
{
    const TimingModel &m = model();
    EXPECT_EQ(m.ladder.storageBytes(), 512u); // paper: 512B buffer
}

TEST(TimingTable, LocationTableHasOneContentBucket)
{
    const TimingModel &m = model();
    EXPECT_EQ(m.location.contentBuckets(), 1u);
    // Location-only equals LADDER's worst-content column.
    for (unsigned wb = 0; wb < 8; ++wb)
        for (unsigned bb = 0; bb < 8; ++bb)
            EXPECT_DOUBLE_EQ(m.location.at(wb, bb, 0).latencyNs,
                             m.ladder.at(wb, bb, 7).latencyNs);
}

TEST(TimingTable, BlpWorstCasesWordline)
{
    const TimingModel &m = model();
    // At full bitline content both tables' far corners coincide (both
    // worst-case everything).
    EXPECT_NEAR(m.blp.at(7, 7, 7).latencyNs,
                m.ladder.at(7, 7, 7).latencyNs, 1e-9);
    // At low bitline content BLP still pays the worst-case wordline:
    // it cannot beat LADDER's low-content entry.
    EXPECT_GE(m.blp.at(7, 7, 0).latencyNs,
              m.ladder.at(7, 7, 0).latencyNs);
}

TEST(TimingTable, GranularityAblation)
{
    CrossbarParams p;
    const TimingModel &coarse = cachedTimingModel(p, 4);
    const TimingModel &fine = cachedTimingModel(p, 16);
    // Coarser tables are safe (their best entry is no faster than the
    // finer table's best) and hit the same worst case.
    EXPECT_GE(coarse.ladder.bestLatencyNs(),
              fine.ladder.bestLatencyNs());
    EXPECT_NEAR(coarse.ladder.worstLatencyNs(),
                fine.ladder.worstLatencyNs(), 1.0);
}

TEST(TimingTable, RangeShrinkAblation)
{
    CrossbarParams p;
    const TimingModel &nominal = cachedTimingModel(p, 8, 1.0);
    const TimingModel &shrunk = cachedTimingModel(p, 8, 2.0);
    // Worst case (the baseline spec) is unchanged; the exploitable
    // range below it halves.
    EXPECT_NEAR(shrunk.ladder.worstLatencyNs(),
                nominal.ladder.worstLatencyNs(), 1.0);
    EXPECT_GT(shrunk.ladder.bestLatencyNs(),
              nominal.ladder.bestLatencyNs());
    // The table's best entry is a bucket worst-corner, so it sits at
    // or above the shrunk law's floor of 343.5 ns.
    EXPECT_GE(shrunk.ladder.bestLatencyNs(), 343.4);
    EXPECT_LT(shrunk.ladder.bestLatencyNs(), 480.0);
}

TEST(TimingTable, DerivedModelUsesGivenLaw)
{
    CrossbarParams p;
    const TimingModel &full = cachedTimingModel(p, 8);
    CrossbarParams half = p;
    half.selectedCells = 4;
    TimingModel derived =
        TimingModel::generateDerived(half, full.law, 8);
    // Fewer selected cells -> higher drops -> faster everywhere.
    for (unsigned wb = 0; wb < 8; ++wb)
        for (unsigned bb = 0; bb < 8; ++bb)
            EXPECT_LE(derived.location.at(wb, bb, 0).latencyNs,
                      full.location.at(wb, bb, 0).latencyNs + 1e-9);
}

TEST(TimingTable, CachedModelIsStable)
{
    CrossbarParams p;
    const TimingModel &a = cachedTimingModel(p, 8);
    const TimingModel &b = cachedTimingModel(p, 8);
    EXPECT_EQ(&a, &b);
    const TimingModel &c = cachedTimingModel(p, 4);
    EXPECT_NE(&a, &c);
}

TEST(TimingTable, SurfacesAttachedByGenerate)
{
    // Every generated model carries the three dense O(1) surfaces, and
    // each mirrors its table exactly (see test_latency_surface for the
    // full contract).
    const TimingModel &m = model();
    ASSERT_NE(m.ladderSurface, nullptr);
    ASSERT_NE(m.blpSurface, nullptr);
    ASSERT_NE(m.locationSurface, nullptr);
    EXPECT_TRUE(m.ladderSurface->verifyAgainst(m.ladder).ok());
    EXPECT_TRUE(m.blpSurface->verifyAgainst(m.blp).ok());
    EXPECT_TRUE(m.locationSurface->verifyAgainst(m.location).ok());
    EXPECT_EQ(m.locationSurface->contentDense(), 1u);
}

TEST(TimingTable, SurfacesAttachedByGenerateDerived)
{
    CrossbarParams half;
    half.selectedCells = 4;
    TimingModel derived =
        TimingModel::generateDerived(half, model().law, 8);
    ASSERT_NE(derived.locationSurface, nullptr);
    EXPECT_TRUE(
        derived.locationSurface->verifyAgainst(derived.location).ok());
}

TEST(TimingTable, SurfaceLookupEqualsTableLookup)
{
    const TimingModel &m = model();
    for (unsigned wl : {0u, 63u, 64u, 255u, 511u}) {
        for (unsigned bl : {0u, 63u, 64u, 255u, 511u}) {
            for (unsigned c : {0u, 1u, 64u, 65u, 256u, 512u, 9999u}) {
                EXPECT_EQ(m.ladderSurface->lookup(wl, bl, c).latencyNs,
                          m.ladder.lookup(wl, bl, c).latencyNs)
                    << "wl " << wl << " bl " << bl << " c " << c;
                EXPECT_EQ(m.blpSurface->lookup(wl, bl, c).latencyNs,
                          m.blp.lookup(wl, bl, c).latencyNs);
                EXPECT_EQ(
                    m.locationSurface->lookup(wl, bl, c).latencyNs,
                    m.location.lookup(wl, bl, c).latencyNs);
            }
        }
    }
}

TEST(PowerTable, PositiveAndContentSensitive)
{
    const TimingModel &m = model();
    ASSERT_FALSE(m.power.empty());
    double low = m.power.lookup(256, 256, 0, 0);
    double high = m.power.lookup(256, 256, 512, 512);
    EXPECT_GT(low, 0.0);
    EXPECT_GT(high, low);
}

} // namespace
} // namespace ladder
