/** @file Tests for the sparse matrix layer. */

#include <gtest/gtest.h>

#include "circuit/sparse.hh"
#include "common/rng.hh"

namespace ladder
{
namespace
{

TEST(Sparse, BuildAndAccess)
{
    SparseMatrix m(3, {{0, 0, 2.0}, {1, 2, -1.0}, {2, 1, 4.0}});
    EXPECT_EQ(m.size(), 3u);
    EXPECT_EQ(m.nonZeros(), 3u);
    EXPECT_DOUBLE_EQ(m.at(0, 0), 2.0);
    EXPECT_DOUBLE_EQ(m.at(1, 2), -1.0);
    EXPECT_DOUBLE_EQ(m.at(2, 1), 4.0);
    EXPECT_DOUBLE_EQ(m.at(0, 1), 0.0);
}

TEST(Sparse, DuplicatesSum)
{
    SparseMatrix m(2, {{0, 0, 1.0}, {0, 0, 2.5}, {1, 1, 1.0}});
    EXPECT_DOUBLE_EQ(m.at(0, 0), 3.5);
    EXPECT_EQ(m.nonZeros(), 2u);
}

TEST(Sparse, MatvecMatchesDense)
{
    Rng rng(1);
    const std::size_t n = 12;
    std::vector<Triplet> trip;
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            if (rng.nextBool(0.3))
                trip.push_back({i, j, rng.nextDouble() - 0.5});
        }
    }
    SparseMatrix m(n, trip);
    std::vector<double> dense = m.toDense();
    std::vector<double> x(n);
    for (auto &v : x)
        v = rng.nextDouble();
    std::vector<double> y;
    m.multiply(x, y);
    for (std::size_t i = 0; i < n; ++i) {
        double expect = 0.0;
        for (std::size_t j = 0; j < n; ++j)
            expect += dense[i * n + j] * x[j];
        EXPECT_NEAR(y[i], expect, 1e-12);
    }
}

TEST(Sparse, EmptyRows)
{
    SparseMatrix m(4, {{0, 0, 1.0}, {3, 3, 1.0}});
    std::vector<double> x(4, 1.0), y;
    m.multiply(x, y);
    EXPECT_DOUBLE_EQ(y[1], 0.0);
    EXPECT_DOUBLE_EQ(y[2], 0.0);
}

TEST(Sparse, Diagonal)
{
    SparseMatrix m(3, {{0, 0, 5.0}, {1, 0, 1.0}, {2, 2, -2.0}});
    auto d = m.diagonal();
    EXPECT_DOUBLE_EQ(d[0], 5.0);
    EXPECT_DOUBLE_EQ(d[1], 0.0);
    EXPECT_DOUBLE_EQ(d[2], -2.0);
}

} // namespace
} // namespace ladder
