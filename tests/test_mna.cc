/** @file Tests for the full crossbar MNA solver. */

#include <gtest/gtest.h>

#include "circuit/mna.hh"

namespace ladder
{
namespace
{

CrossbarParams
smallParams(std::size_t n = 32)
{
    CrossbarParams p;
    p.rows = n;
    p.cols = n;
    return p;
}

TEST(Mna, ConvergesOnSmallCrossbar)
{
    CrossbarParams p = smallParams();
    CrossbarMna mna(p);
    ResetCondition cond{0, 0, 0, 0};
    ResetEvaluation eval = mna.evaluate(cond);
    EXPECT_TRUE(eval.converged);
    EXPECT_GT(eval.minDropVolts, 0.0);
    EXPECT_LE(eval.minDropVolts, p.writeVolts);
    EXPECT_GT(eval.sourcePowerWatts, 0.0);
}

TEST(Mna, NearCellSeesAlmostFullVoltage)
{
    CrossbarParams p = smallParams();
    CrossbarMna mna(p);
    ResetEvaluation eval = mna.evaluate({0, 0, 0, 0});
    // Best case: only the driver and a few wire segments drop.
    EXPECT_GT(eval.minDropVolts, 0.9 * p.writeVolts);
}

TEST(Mna, FartherCellsSeeLessVoltage)
{
    CrossbarParams p = smallParams();
    CrossbarMna mna(p);
    double near = mna.evaluate({0, 0, 0, 0}).minDropVolts;
    double farRow =
        mna.evaluate({p.rows - 1, 0, 0, 0}).minDropVolts;
    double farCorner =
        mna.evaluate({p.rows - 1, p.cols / 8 - 1, 0, 0}).minDropVolts;
    EXPECT_LT(farRow, near);
    EXPECT_LT(farCorner, farRow);
}

TEST(Mna, MoreWordlineLrsMeansLessVoltage)
{
    CrossbarParams p = smallParams();
    CrossbarMna mna(p);
    std::size_t lastSlot = p.cols / 8 - 1;
    double prev = 10.0;
    for (unsigned c : {0u, 8u, 16u, 24u}) {
        double drop =
            mna.evaluate({p.rows - 1, lastSlot, c, 0}).minDropVolts;
        EXPECT_LT(drop, prev) << "count " << c;
        prev = drop;
    }
}

TEST(Mna, MoreBitlineLrsMeansLessVoltage)
{
    CrossbarParams p = smallParams();
    CrossbarMna mna(p);
    std::size_t lastSlot = p.cols / 8 - 1;
    double low =
        mna.evaluate({p.rows - 1, lastSlot, 0, 24}).minDropVolts;
    double none =
        mna.evaluate({p.rows - 1, lastSlot, 0, 0}).minDropVolts;
    EXPECT_LT(low, none);
}

TEST(Mna, WorstCasePatternCounts)
{
    CrossbarParams p = smallParams(16);
    CrossbarMna mna(p);
    ResetCondition cond{3, 1, 5, 4};
    auto pattern = mna.worstCasePattern(cond);
    // Count LRS on the selected wordline outside the selected byte.
    unsigned onWl = 0;
    auto bls = mna.selectedBitlines(cond);
    for (std::size_t j = 0; j < p.cols; ++j) {
        bool selected =
            std::find(bls.begin(), bls.end(), j) != bls.end();
        if (!selected &&
            pattern[cond.wordline * p.cols + j] == CellState::LRS)
            ++onWl;
    }
    EXPECT_EQ(onWl, cond.wlLrsCount);
    // Count LRS on each selected bitline outside the selected row.
    for (std::size_t bl : bls) {
        unsigned onBl = 0;
        for (std::size_t i = 0; i < p.rows; ++i) {
            if (i != cond.wordline &&
                pattern[i * p.cols + bl] == CellState::LRS)
                ++onBl;
        }
        EXPECT_EQ(onBl, cond.blLrsCount);
    }
}

TEST(Mna, SelectedBitlinesFollowByteOffset)
{
    CrossbarParams p = smallParams(64);
    CrossbarMna mna(p);
    auto bls = mna.selectedBitlines({0, 3, 0, 0});
    ASSERT_EQ(bls.size(), 8u);
    for (unsigned k = 0; k < 8; ++k)
        EXPECT_EQ(bls[k], 24u + k);
}

TEST(Mna, AllSelectedCellDropsReported)
{
    CrossbarParams p = smallParams();
    CrossbarMna mna(p);
    WriteOperation op;
    op.wordline = 1;
    op.bitlines = {8, 9, 10, 11, 12, 13, 14, 15};
    std::vector<CellState> pattern(p.rows * p.cols, CellState::HRS);
    auto sol = mna.solve(pattern, op);
    EXPECT_EQ(sol.cellDrops.size(), 8u);
    for (double d : sol.cellDrops) {
        EXPECT_GT(d, 0.0);
        EXPECT_GE(d, sol.minDropVolts);
    }
}

} // namespace
} // namespace ladder
