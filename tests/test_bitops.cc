/** @file Unit and property tests for the bit-manipulation utilities. */

#include <gtest/gtest.h>

#include "common/bitops.hh"
#include "common/rng.hh"

namespace ladder
{
namespace
{

LineData
randomLine(Rng &rng)
{
    LineData line;
    for (auto &byte : line)
        byte = static_cast<std::uint8_t>(rng.nextBounded(256));
    return line;
}

TEST(Bitops, Popcount8)
{
    EXPECT_EQ(popcount8(0x00), 0u);
    EXPECT_EQ(popcount8(0xff), 8u);
    EXPECT_EQ(popcount8(0x0f), 4u);
    EXPECT_EQ(popcount8(0x81), 2u);
}

TEST(Bitops, PopcountLineMatchesByteSum)
{
    Rng rng(1);
    for (int i = 0; i < 50; ++i) {
        LineData line = randomLine(rng);
        unsigned expected = 0;
        for (auto byte : line)
            expected += popcount8(byte);
        EXPECT_EQ(popcountLine(line), expected);
    }
}

TEST(Bitops, PopcountRangeSubsets)
{
    Rng rng(2);
    LineData line = randomLine(rng);
    unsigned total = 0;
    for (size_t start = 0; start < lineBytes; start += 16)
        total += popcountRange(line, start, start + 16);
    EXPECT_EQ(total, popcountLine(line));
    EXPECT_EQ(popcountRange(line, 5, 5), 0u);
}

TEST(Bitops, MaxBytePopcount)
{
    LineData line = filledLine(0x00);
    line[10] = 0x7f; // 7 ones
    line[20] = 0x0f; // 4 ones
    EXPECT_EQ(maxBytePopcount(line, 0, lineBytes), 7u);
    EXPECT_EQ(maxBytePopcount(line, 16, 32), 4u);
    EXPECT_EQ(maxBytePopcount(line, 32, 48), 0u);
}

TEST(Bitops, HammingAndTransitionsConsistent)
{
    Rng rng(3);
    for (int i = 0; i < 50; ++i) {
        LineData a = randomLine(rng);
        LineData b = randomLine(rng);
        BitTransitions t = countTransitions(a, b);
        EXPECT_EQ(t.resets + t.sets, hammingLine(a, b));
        // Popcount bookkeeping: ones(b) = ones(a) - resets + sets.
        EXPECT_EQ(popcountLine(b),
                  popcountLine(a) - t.resets + t.sets);
    }
}

TEST(Bitops, InvertLine)
{
    Rng rng(4);
    LineData line = randomLine(rng);
    LineData inv = invertLine(line);
    EXPECT_EQ(popcountLine(inv), lineBytes * 8 - popcountLine(line));
    EXPECT_EQ(invertLine(inv), line);
}

TEST(Bitops, FilledLine)
{
    EXPECT_EQ(popcountLine(filledLine(0x00)), 0u);
    EXPECT_EQ(popcountLine(filledLine(0xff)), lineBytes * 8);
}

class RotateProperty : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(RotateProperty, RoundTripAndPopcountPreserved)
{
    unsigned amount = GetParam();
    Rng rng(100 + amount);
    for (int i = 0; i < 20; ++i) {
        LineData line = randomLine(rng);
        LineData original = line;
        for (unsigned g = 0; g < lineBytes / 8; ++g)
            rotateGroupLeft(line, g, amount);
        EXPECT_EQ(popcountLine(line), popcountLine(original));
        for (unsigned g = 0; g < lineBytes / 8; ++g)
            rotateGroupRight(line, g, amount);
        EXPECT_EQ(line, original);
    }
}

INSTANTIATE_TEST_SUITE_P(AllAmounts, RotateProperty,
                         ::testing::Values(0u, 1u, 7u, 8u, 13u, 32u,
                                           63u, 64u, 65u, 200u));

class TransposeProperty : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(TransposeProperty, InvolutionAndPopcountPreserved)
{
    unsigned group = GetParam();
    Rng rng(200 + group);
    for (int i = 0; i < 20; ++i) {
        LineData line = randomLine(rng);
        LineData original = line;
        transposeGroup(line, group);
        EXPECT_EQ(popcountLine(line), popcountLine(original));
        transposeGroup(line, group);
        EXPECT_EQ(line, original);
    }
}

INSTANTIATE_TEST_SUITE_P(AllGroups, TransposeProperty,
                         ::testing::Range(0u, 8u));

TEST(Bitops, TransposeSpreadsDenseByte)
{
    // One all-ones byte must spread exactly one bit to each byte of
    // its group.
    LineData line = filledLine(0x00);
    line[3] = 0xff;
    transposeGroup(line, 0);
    for (unsigned byte = 0; byte < 8; ++byte)
        EXPECT_EQ(popcount8(line[byte]), 1u) << "byte " << byte;
    // And specifically bit 3 of every byte (row 3 became column 3).
    for (unsigned byte = 0; byte < 8; ++byte)
        EXPECT_TRUE(line[byte] & (1u << 3));
}

TEST(Bitops, TransposeLeavesOtherGroupsAlone)
{
    Rng rng(5);
    LineData line = randomLine(rng);
    LineData original = line;
    transposeGroup(line, 2);
    for (unsigned i = 0; i < lineBytes; ++i) {
        if (i / 8 != 2)
            EXPECT_EQ(line[i], original[i]) << "byte " << i;
    }
}

} // namespace
} // namespace ladder
