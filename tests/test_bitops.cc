/** @file Unit and property tests for the bit-manipulation utilities. */

#include <gtest/gtest.h>

#include <vector>

#include "common/bitops.hh"
#include "common/rng.hh"

namespace ladder
{
namespace
{

LineData
randomLine(Rng &rng)
{
    LineData line;
    for (auto &byte : line)
        byte = static_cast<std::uint8_t>(rng.nextBounded(256));
    return line;
}

TEST(Bitops, Popcount8)
{
    EXPECT_EQ(popcount8(0x00), 0u);
    EXPECT_EQ(popcount8(0xff), 8u);
    EXPECT_EQ(popcount8(0x0f), 4u);
    EXPECT_EQ(popcount8(0x81), 2u);
}

TEST(Bitops, PopcountLineMatchesByteSum)
{
    Rng rng(1);
    for (int i = 0; i < 50; ++i) {
        LineData line = randomLine(rng);
        unsigned expected = 0;
        for (auto byte : line)
            expected += popcount8(byte);
        EXPECT_EQ(popcountLine(line), expected);
    }
}

TEST(Bitops, PopcountRangeSubsets)
{
    Rng rng(2);
    LineData line = randomLine(rng);
    unsigned total = 0;
    for (size_t start = 0; start < lineBytes; start += 16)
        total += popcountRange(line, start, start + 16);
    EXPECT_EQ(total, popcountLine(line));
    EXPECT_EQ(popcountRange(line, 5, 5), 0u);
}

TEST(Bitops, MaxBytePopcount)
{
    LineData line = filledLine(0x00);
    line[10] = 0x7f; // 7 ones
    line[20] = 0x0f; // 4 ones
    EXPECT_EQ(maxBytePopcount(line, 0, lineBytes), 7u);
    EXPECT_EQ(maxBytePopcount(line, 16, 32), 4u);
    EXPECT_EQ(maxBytePopcount(line, 32, 48), 0u);
}

TEST(Bitops, HammingAndTransitionsConsistent)
{
    Rng rng(3);
    for (int i = 0; i < 50; ++i) {
        LineData a = randomLine(rng);
        LineData b = randomLine(rng);
        BitTransitions t = countTransitions(a, b);
        EXPECT_EQ(t.resets + t.sets, hammingLine(a, b));
        // Popcount bookkeeping: ones(b) = ones(a) - resets + sets.
        EXPECT_EQ(popcountLine(b),
                  popcountLine(a) - t.resets + t.sets);
    }
}

TEST(Bitops, InvertLine)
{
    Rng rng(4);
    LineData line = randomLine(rng);
    LineData inv = invertLine(line);
    EXPECT_EQ(popcountLine(inv), lineBytes * 8 - popcountLine(line));
    EXPECT_EQ(invertLine(inv), line);
}

TEST(Bitops, FilledLine)
{
    EXPECT_EQ(popcountLine(filledLine(0x00)), 0u);
    EXPECT_EQ(popcountLine(filledLine(0xff)), lineBytes * 8);
}

class RotateProperty : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(RotateProperty, RoundTripAndPopcountPreserved)
{
    unsigned amount = GetParam();
    Rng rng(100 + amount);
    for (int i = 0; i < 20; ++i) {
        LineData line = randomLine(rng);
        LineData original = line;
        for (unsigned g = 0; g < lineBytes / 8; ++g)
            rotateGroupLeft(line, g, amount);
        EXPECT_EQ(popcountLine(line), popcountLine(original));
        for (unsigned g = 0; g < lineBytes / 8; ++g)
            rotateGroupRight(line, g, amount);
        EXPECT_EQ(line, original);
    }
}

INSTANTIATE_TEST_SUITE_P(AllAmounts, RotateProperty,
                         ::testing::Values(0u, 1u, 7u, 8u, 13u, 32u,
                                           63u, 64u, 65u, 200u));

class TransposeProperty : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(TransposeProperty, InvolutionAndPopcountPreserved)
{
    unsigned group = GetParam();
    Rng rng(200 + group);
    for (int i = 0; i < 20; ++i) {
        LineData line = randomLine(rng);
        LineData original = line;
        transposeGroup(line, group);
        EXPECT_EQ(popcountLine(line), popcountLine(original));
        transposeGroup(line, group);
        EXPECT_EQ(line, original);
    }
}

INSTANTIATE_TEST_SUITE_P(AllGroups, TransposeProperty,
                         ::testing::Range(0u, 8u));

TEST(Bitops, TransposeSpreadsDenseByte)
{
    // One all-ones byte must spread exactly one bit to each byte of
    // its group.
    LineData line = filledLine(0x00);
    line[3] = 0xff;
    transposeGroup(line, 0);
    for (unsigned byte = 0; byte < 8; ++byte)
        EXPECT_EQ(popcount8(line[byte]), 1u) << "byte " << byte;
    // And specifically bit 3 of every byte (row 3 became column 3).
    for (unsigned byte = 0; byte < 8; ++byte)
        EXPECT_TRUE(line[byte] & (1u << 3));
}

TEST(Bitops, TransposeLeavesOtherGroupsAlone)
{
    Rng rng(5);
    LineData line = randomLine(rng);
    LineData original = line;
    transposeGroup(line, 2);
    for (unsigned i = 0; i < lineBytes; ++i) {
        if (i / 8 != 2)
            EXPECT_EQ(line[i], original[i]) << "byte " << i;
    }
}

// --------------------------------------------------------------------
// Dispatched-kernel equivalence: the scalar reference is the
// specification; the dispatched (word-lane or AVX2) implementations
// must agree bit-for-bit on every input we can throw at them.
// --------------------------------------------------------------------

/** Edge-pattern lines plus a stream of random ones. */
std::vector<LineData>
fuzzLines(Rng &rng, int randomCount)
{
    std::vector<LineData> lines;
    lines.push_back(filledLine(0x00));
    lines.push_back(filledLine(0xff));
    lines.push_back(filledLine(0x01));
    lines.push_back(filledLine(0x80));
    lines.push_back(filledLine(0x55));
    lines.push_back(filledLine(0xaa));
    // A single set bit walking the line (catches lane offsets).
    for (unsigned byte : {0u, 7u, 8u, 31u, 32u, 63u}) {
        LineData line = filledLine(0x00);
        line[byte] = 0x01;
        lines.push_back(line);
    }
    for (int i = 0; i < randomCount; ++i)
        lines.push_back(randomLine(rng));
    return lines;
}

TEST(BitopsDispatch, LineKernelsMatchScalarReference)
{
    Rng rng(6);
    std::vector<LineData> lines = fuzzLines(rng, 200);
    for (size_t i = 0; i < lines.size(); ++i) {
        const LineData &a = lines[i];
        const LineData &b = lines[(i + 1) % lines.size()];
        EXPECT_EQ(popcountLine(a), popcountLineScalar(a)) << "line " << i;
        EXPECT_EQ(hammingLine(a, b), hammingLineScalar(a, b));
        BitTransitions d = countTransitions(a, b);
        BitTransitions s = countTransitionsScalar(a, b);
        EXPECT_EQ(d.resets, s.resets);
        EXPECT_EQ(d.sets, s.sets);
    }
}

TEST(BitopsDispatch, PopcountRangeMatchesScalarForEveryWindow)
{
    // Exhaustive over every [first, last) window — including empty
    // windows and every unaligned endpoint — so the masked head/tail
    // word loads are fully exercised.
    Rng rng(7);
    std::vector<LineData> lines = fuzzLines(rng, 12);
    for (const LineData &line : lines) {
        for (size_t first = 0; first <= lineBytes; ++first) {
            for (size_t last = first; last <= lineBytes; ++last) {
                ASSERT_EQ(popcountRange(line, first, last),
                          popcountRangeScalar(line, first, last))
                    << "window [" << first << ", " << last << ")";
            }
        }
    }
}

TEST(BitopsDispatch, Avx2KernelsMatchScalarReference)
{
    if (!bitopsHaveAvx2())
        GTEST_SKIP() << "AVX2 unavailable or disabled on this host";
    Rng rng(8);
    std::vector<LineData> lines = fuzzLines(rng, 500);
    for (size_t i = 0; i < lines.size(); ++i) {
        const LineData &a = lines[i];
        const LineData &b = lines[(i * 7 + 3) % lines.size()];
        ASSERT_EQ(popcountLineAvx2(a), popcountLineScalar(a))
            << "line " << i;
        ASSERT_EQ(hammingLineAvx2(a, b), hammingLineScalar(a, b));
        BitTransitions v = countTransitionsAvx2(a, b);
        BitTransitions s = countTransitionsScalar(a, b);
        ASSERT_EQ(v.resets, s.resets);
        ASSERT_EQ(v.sets, s.sets);
    }
}

TEST(BitopsDispatch, DispatchDecisionIsStable)
{
    // The runtime dispatch decision is made once per process; repeated
    // queries must agree (the kernels above rely on this).
    bool first = bitopsHaveAvx2();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(bitopsHaveAvx2(), first);
}

TEST(BitopsDispatch, MaxBytePopcountOnEdgePatterns)
{
    EXPECT_EQ(maxBytePopcount(filledLine(0xff), 0, lineBytes), 8u);
    EXPECT_EQ(maxBytePopcount(filledLine(0x00), 0, lineBytes), 0u);
    EXPECT_EQ(maxBytePopcount(filledLine(0x55), 3, 9), 4u);
}

} // namespace
} // namespace ladder
