/** @file Tests for the minimal JSON writer/parser pair. */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <sstream>

#include "common/json.hh"

namespace ladder
{
namespace
{

TEST(JsonWriter, ObjectsArraysAndScalars)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.field("name", "run-1");
    w.field("ipc", 1.25);
    w.field("count", std::uint64_t{42});
    w.field("delta", std::int64_t{-7});
    w.field("ok", true);
    w.key("none");
    w.valueNull();
    w.key("values");
    w.beginArray();
    w.value(1);
    w.value(2.5);
    w.endArray();
    w.key("nested");
    w.beginObject();
    w.field("x", 0.0);
    w.endObject();
    w.endObject();
    EXPECT_TRUE(w.balanced());

    JsonValue v = parseJson(os.str());
    ASSERT_TRUE(v.isObject());
    EXPECT_EQ(v.at("name").string, "run-1");
    EXPECT_DOUBLE_EQ(v.at("ipc").number, 1.25);
    EXPECT_DOUBLE_EQ(v.at("count").number, 42.0);
    EXPECT_DOUBLE_EQ(v.at("delta").number, -7.0);
    EXPECT_TRUE(v.at("ok").boolean);
    EXPECT_TRUE(v.at("none").isNull());
    ASSERT_TRUE(v.at("values").isArray());
    ASSERT_EQ(v.at("values").array.size(), 2u);
    EXPECT_DOUBLE_EQ(v.at("values").array[1].number, 2.5);
    EXPECT_DOUBLE_EQ(v.at("nested").at("x").number, 0.0);
    EXPECT_FALSE(v.has("missing"));
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.field("nan", std::numeric_limits<double>::quiet_NaN());
    w.field("inf", std::numeric_limits<double>::infinity());
    w.endObject();
    JsonValue v = parseJson(os.str());
    EXPECT_TRUE(v.at("nan").isNull());
    EXPECT_TRUE(v.at("inf").isNull());
}

TEST(JsonWriter, DoublesRoundTripExactly)
{
    const double values[] = {0.1, 1.0 / 3.0, 1e-300, 6.02214076e23,
                             -123.456789012345678, 0.0};
    for (double d : values) {
        std::ostringstream os;
        JsonWriter w(os);
        w.beginArray();
        w.value(d);
        w.endArray();
        JsonValue v = parseJson(os.str());
        std::uint64_t ba, bb;
        std::memcpy(&ba, &d, sizeof(ba));
        double parsed = v.array[0].number;
        std::memcpy(&bb, &parsed, sizeof(bb));
        EXPECT_EQ(ba, bb) << "double " << d << " did not round-trip";
    }
}

TEST(JsonWriter, StringEscaping)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.field("s", std::string("a\"b\\c\n\t\x01z"));
    w.endObject();
    JsonValue v = parseJson(os.str());
    EXPECT_EQ(v.at("s").string, "a\"b\\c\n\t\x01z");
}

TEST(JsonWriter, DeterministicOutput)
{
    auto emit = []() {
        std::ostringstream os;
        JsonWriter w(os);
        w.beginObject();
        w.field("pi", 3.141592653589793);
        w.key("list");
        w.beginArray();
        for (int i = 0; i < 4; ++i)
            w.value(i * 0.1);
        w.endArray();
        w.endObject();
        return os.str();
    };
    EXPECT_EQ(emit(), emit());
}

TEST(JsonParser, AcceptsWhitespaceAndUnicodeEscapes)
{
    JsonValue v = parseJson("  { \"k\" : [ 1 ,\n 2 ] ,"
                            " \"u\" : \"\\u0041\\u00e9\" } ");
    EXPECT_DOUBLE_EQ(v.at("k").array[0].number, 1.0);
    EXPECT_EQ(v.at("u").string, "A\xc3\xa9");
}

} // namespace
} // namespace ladder
