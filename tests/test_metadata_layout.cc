/** @file Tests for the LRS-metadata region layout. */

#include <gtest/gtest.h>

#include <set>

#include "schemes/metadata_layout.hh"

namespace ladder
{
namespace
{

MetadataLayout
layout()
{
    MemoryGeometry geo;
    AddressMap map(geo);
    return MetadataLayout(geo, map.totalPages() * 3 / 4);
}

TEST(MetadataLayout, ReservedRegionAboveData)
{
    MetadataLayout l = layout();
    EXPECT_EQ(l.reservedBase(),
              l.dataPages() * MemoryGeometry::pageBytes);
    EXPECT_FALSE(l.isMetadataAddr(l.reservedBase() - 1));
    EXPECT_TRUE(l.isMetadataAddr(l.reservedBase()));
}

TEST(MetadataLayout, BasicTwoLinesPerPage)
{
    MetadataLayout l = layout();
    Addr a0 = l.basicLine(10, 0);
    Addr a1 = l.basicLine(10, 1);
    EXPECT_EQ(a1, a0 + lineBytes);
    EXPECT_TRUE(l.isMetadataAddr(a0));
    // Distinct pages get distinct line pairs.
    EXPECT_EQ(l.basicLine(11, 0), a0 + 2 * lineBytes);
}

TEST(MetadataLayout, EstOneLinePerPage)
{
    MetadataLayout l = layout();
    std::set<Addr> seen;
    for (std::uint64_t page = 0; page < 500; ++page) {
        Addr a = l.estLine(page);
        EXPECT_TRUE(l.isMetadataAddr(a));
        EXPECT_EQ(a % lineBytes, 0u);
        EXPECT_TRUE(seen.insert(a).second) << "page " << page;
    }
}

TEST(MetadataLayout, HybridLowSharedByFourAdjacentRows)
{
    MemoryGeometry geo;
    AddressMap map(geo);
    MetadataLayout l = layout();
    // Pages on wordlines 4k..4k+3 of the same mat group share a line.
    BlockLocation loc = map.decode(0);
    loc.wordline = 8;
    Addr a = l.hybridLowLine(loc);
    loc.wordline = 9;
    EXPECT_EQ(l.hybridLowLine(loc), a);
    loc.wordline = 11;
    EXPECT_EQ(l.hybridLowLine(loc), a);
    loc.wordline = 12;
    EXPECT_NE(l.hybridLowLine(loc), a);
    EXPECT_TRUE(l.isMetadataAddr(a));
}

TEST(MetadataLayout, HybridLowDistinctAcrossBanks)
{
    MemoryGeometry geo;
    AddressMap map(geo);
    MetadataLayout l = layout();
    BlockLocation a = map.decode(0);
    a.wordline = 0;
    BlockLocation b = a;
    b.bank = a.bank + 1;
    EXPECT_NE(l.hybridLowLine(a), l.hybridLowLine(b));
    BlockLocation c = a;
    c.channel = a.channel ^ 1;
    EXPECT_NE(l.hybridLowLine(a), l.hybridLowLine(c));
}

TEST(MetadataLayout, RegionsDoNotOverlap)
{
    MetadataLayout l = layout();
    // Per-page lines and the hybrid-low region are disjoint.
    Addr perPageEnd =
        l.reservedBase() + l.dataPages() * 2 * lineBytes;
    MemoryGeometry geo;
    AddressMap map(geo);
    BlockLocation loc = map.decode(0);
    loc.wordline = 0;
    EXPECT_GE(l.hybridLowLine(loc), perPageEnd);
}

TEST(MetadataLayout, StorageOverheadsMatchPaper)
{
    MetadataLayout l = layout();
    EXPECT_NEAR(l.basicOverhead(), 0.0312, 0.0002); // 3.12%
    EXPECT_NEAR(l.estOverhead(), 0.0156, 0.0002);   // 1.56%
    EXPECT_NEAR(l.hybridOverhead(128), 0.0127, 0.002); // ~0.97-1.3%
    EXPECT_LT(l.hybridOverhead(128), l.estOverhead());
    EXPECT_LT(l.hybridOverhead(256), l.hybridOverhead(128));
}

TEST(MetadataLayout, OutOfRangePagePanics)
{
    MetadataLayout l = layout();
    EXPECT_THROW(l.estLine(l.dataPages()), std::logic_error);
    EXPECT_THROW(l.basicLine(l.dataPages(), 0), std::logic_error);
}

TEST(MetadataLayout, TooSmallReserveIsRejected)
{
    MemoryGeometry geo;
    AddressMap map(geo);
    EXPECT_THROW(MetadataLayout(geo, map.totalPages()),
                 std::logic_error);
}

} // namespace
} // namespace ladder
