/**
 * @file
 * Golden end-to-end regression gate: one tiny fixed (Baseline x lbm)
 * run's stats.json and v2 binary trace must match the committed
 * reference bytes under tests/golden/ exactly. Any change to the
 * simulator's observable behaviour — event ordering, timing, stat
 * arithmetic, serialization — fails this test loudly instead of
 * drifting silently.
 *
 * When a change is *intentional*, regenerate the goldens with
 *
 *     LADDER_GOLDEN_REGEN=1 ./build/tests/test_golden_run
 *
 * and commit the rewritten files together with the change that
 * explains them (see tests/golden/README.md).
 *
 * Determinism notes: this test runs in its own binary so the
 * process-wide solver instrumentation and memoized timing tables see
 * a fixed call sequence, and LADDER_GIT_DESCRIBE is pinned before any
 * test code runs so the manifest does not change with every commit.
 * Volatile manifest fields are off by default. The reference bytes
 * are produced by the repository's CI toolchain; a different
 * compiler's floating-point contraction choices may legitimately
 * require regeneration.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "common/json.hh"
#include "sim/experiment.hh"
#include "sim/stats_export.hh"

#ifndef LADDER_GOLDEN_DIR
#error "LADDER_GOLDEN_DIR must point at the committed golden files"
#endif

namespace fs = std::filesystem;

namespace ladder
{
namespace
{

/**
 * Pin the manifest's git_describe before the first call can memoize
 * the real `git describe` output (gitDescribeString caches under a
 * magic static, so this must run before any test body).
 */
const bool pinnedDescribe = []() {
    ::setenv("LADDER_GIT_DESCRIBE", "golden", /*overwrite=*/1);
    return true;
}();

ExperimentConfig
goldenConfig(const fs::path &outDir)
{
    ExperimentConfig cfg;
    // Deliberately NOT defaultExperimentConfig(): the golden window
    // must not scale with LADDER_BENCH_SCALE.
    cfg.warmupInstr = 60'000;
    cfg.measureInstr = 20'000;
    cfg.cacheScale = 1.0 / 16.0;
    cfg.epochCycles = 10'000;
    cfg.statsJsonDir = (outDir / "stats").string();
    cfg.traceOutDir = (outDir / "trace").string();
    cfg.traceFormat = "bin2";
    cfg.traceChunkRecords = 512;
    return cfg;
}

std::string
slurp(const fs::path &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is.good())
        return {};
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

/**
 * Run one golden cell end to end and compare (or regenerate) the
 * committed reference bytes. @p cell is the canonical directory name
 * `<scheme>__<workload>`; @p extraChecks runs against the parsed
 * stats.json document after the byte comparison.
 */
void
checkGoldenCell(SchemeKind scheme, const std::string &workload,
                const std::string &cell)
{
    ASSERT_TRUE(pinnedDescribe);
    const fs::path goldenDir = fs::path(LADDER_GOLDEN_DIR) / cell;
    const fs::path outDir =
        fs::path(::testing::TempDir()) / ("ladder_golden_" + cell);
    fs::remove_all(outDir);

    ExperimentConfig cfg = goldenConfig(outDir);
    runOne(scheme, workload, cfg);

    const fs::path statsOut =
        fs::path(cfg.statsJsonDir) / cell / "stats.json";
    const fs::path traceOut =
        fs::path(cfg.traceOutDir) / cell / "trace.bin";
    std::string stats = slurp(statsOut);
    std::string trace = slurp(traceOut);
    ASSERT_FALSE(stats.empty()) << statsOut;
    ASSERT_FALSE(trace.empty()) << traceOut;

    if (std::getenv("LADDER_GOLDEN_REGEN")) {
        fs::create_directories(goldenDir);
        fs::copy_file(statsOut, goldenDir / "stats.json",
                      fs::copy_options::overwrite_existing);
        fs::copy_file(traceOut, goldenDir / "trace.bin",
                      fs::copy_options::overwrite_existing);
        GTEST_SKIP() << "regenerated goldens in " << goldenDir;
    }

    std::string goldenStats = slurp(goldenDir / "stats.json");
    std::string goldenTrace = slurp(goldenDir / "trace.bin");
    ASSERT_FALSE(goldenStats.empty())
        << "missing golden " << (goldenDir / "stats.json")
        << " — regenerate with LADDER_GOLDEN_REGEN=1";
    ASSERT_FALSE(goldenTrace.empty())
        << "missing golden " << (goldenDir / "trace.bin");

    EXPECT_TRUE(stats == goldenStats)
        << "stats.json drifted from the golden run (" << stats.size()
        << " vs " << goldenStats.size()
        << " bytes). If the change is intentional, regenerate: "
           "LADDER_GOLDEN_REGEN=1 ./build/tests/test_golden_run";
    EXPECT_TRUE(trace == goldenTrace)
        << "trace.bin drifted from the golden run (" << trace.size()
        << " vs " << goldenTrace.size()
        << " bytes). If the change is intentional, regenerate: "
           "LADDER_GOLDEN_REGEN=1 ./build/tests/test_golden_run";

    // The manifest embeds the fully-resolved config (schema v2), in
    // manifest scope: simulation-affecting parameters present, output
    // paths and parallelism absent.
    JsonValue doc = parseJson(stats);
    ASSERT_TRUE(doc.isObject());
    EXPECT_DOUBLE_EQ(doc.at("schema_version").number, 2.0);
    ASSERT_TRUE(doc.has("resolved_config"));
    const JsonValue &resolved = doc.at("resolved_config");
    ASSERT_TRUE(resolved.isObject());
    EXPECT_DOUBLE_EQ(resolved.at("measure").number, 20000.0);
    EXPECT_DOUBLE_EQ(resolved.at("epoch-cycles").number, 10000.0);
    EXPECT_EQ(resolved.at("trace-format").string, "bin2");
    EXPECT_FALSE(resolved.has("stats-json"));
    EXPECT_FALSE(resolved.has("jobs"));

    // The run is also reproducible within this process: a second
    // identical run must produce the same bytes, or the golden gate
    // would flake rather than catch drift.
    const fs::path outDir2 =
        fs::path(::testing::TempDir()) /
        ("ladder_golden2_" + cell);
    fs::remove_all(outDir2);
    ExperimentConfig cfg2 = goldenConfig(outDir2);
    runOne(scheme, workload, cfg2);
    EXPECT_EQ(stats, slurp(fs::path(cfg2.statsJsonDir) / cell /
                           "stats.json"));
    EXPECT_EQ(trace, slurp(fs::path(cfg2.traceOutDir) / cell /
                           "trace.bin"));

    fs::remove_all(outDir);
    fs::remove_all(outDir2);
}

TEST(GoldenRun, BaselineLbmMatchesCommittedBytes)
{
    checkGoldenCell(SchemeKind::Baseline, "lbm", "baseline__lbm");
}

/**
 * Second cell: a content-aware generator family through the LADDER
 * scheme, locking the new workload frontend's observable behaviour
 * (generator stream, first-touch content, timing interaction) to
 * committed bytes.
 */
TEST(GoldenRun, LadderHybridDnnUpdateMatchesCommittedBytes)
{
    checkGoldenCell(SchemeKind::LadderHybrid, "dnn-update",
                    "LADDER-Hybrid__dnn-update");
}

} // namespace
} // namespace ladder
