/**
 * @file
 * Unit tests for the bounded blocking queue backing the streaming
 * trace sink: FIFO order, capacity-limited backpressure, close()
 * draining semantics, and multi-producer stress.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/bounded_queue.hh"

namespace ladder
{
namespace
{

TEST(BoundedQueue, FifoOrderSingleThread)
{
    BoundedQueue<int> q(4);
    EXPECT_EQ(q.capacity(), 4u);
    EXPECT_EQ(q.size(), 0u);
    EXPECT_TRUE(q.push(1));
    EXPECT_TRUE(q.push(2));
    EXPECT_TRUE(q.push(3));
    EXPECT_EQ(q.size(), 3u);
    EXPECT_EQ(q.pop().value(), 1);
    EXPECT_EQ(q.pop().value(), 2);
    EXPECT_EQ(q.pop().value(), 3);
    EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedQueue, CloseDrainsThenReturnsEmpty)
{
    BoundedQueue<int> q(4);
    q.push(7);
    q.push(8);
    q.close();
    EXPECT_TRUE(q.closed());
    // Already-queued items still come out in order...
    EXPECT_EQ(q.pop().value(), 7);
    EXPECT_EQ(q.pop().value(), 8);
    // ...then pop reports end-of-stream instead of blocking.
    EXPECT_FALSE(q.pop().has_value());
    // Pushing after close is refused.
    EXPECT_FALSE(q.push(9));
}

TEST(BoundedQueue, PushBlocksUntilConsumerFreesASlot)
{
    BoundedQueue<int> q(1);
    ASSERT_TRUE(q.push(1));
    std::atomic<bool> pushed{false};
    std::thread producer([&]() {
        // Queue is full: this must block until the pop below.
        q.push(2);
        pushed = true;
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(pushed.load());
    EXPECT_EQ(q.pop().value(), 1);
    producer.join();
    EXPECT_TRUE(pushed.load());
    EXPECT_EQ(q.pop().value(), 2);
}

TEST(BoundedQueue, CloseWakesBlockedProducer)
{
    BoundedQueue<int> q(1);
    ASSERT_TRUE(q.push(1));
    std::atomic<bool> refused{false};
    std::thread producer([&]() {
        refused = !q.push(2);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    q.close();
    producer.join();
    EXPECT_TRUE(refused.load());
}

TEST(BoundedQueue, MultiProducerStressDeliversEverything)
{
    constexpr unsigned producers = 4;
    constexpr std::uint64_t perProducer = 5'000;
    BoundedQueue<std::uint64_t> q(8);
    std::vector<std::thread> threads;
    for (unsigned p = 0; p < producers; ++p) {
        threads.emplace_back([&q, p]() {
            for (std::uint64_t i = 0; i < perProducer; ++i)
                ASSERT_TRUE(q.push(p * perProducer + i));
        });
    }
    std::uint64_t sum = 0, count = 0;
    std::thread consumer([&]() {
        while (auto v = q.pop()) {
            sum += *v;
            ++count;
        }
    });
    for (auto &t : threads)
        t.join();
    q.close();
    consumer.join();
    const std::uint64_t total = producers * perProducer;
    EXPECT_EQ(count, total);
    EXPECT_EQ(sum, total * (total - 1) / 2);
    EXPECT_EQ(q.size(), 0u);
}

} // namespace
} // namespace ladder
