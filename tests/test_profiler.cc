/**
 * @file
 * Tests for the host-side profiler (common/profiler): disabled sites
 * record nothing and stay within the "one relaxed load" cost budget,
 * enabled sessions capture spans/counters/thread names across
 * threads, enable() clears the previous session, and internName
 * returns stable deduplicated storage.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/profiler.hh"

using namespace ladder;

namespace
{

/** Total spans across every thread log. */
std::size_t
totalSpans(const std::vector<prof::ThreadLog> &logs)
{
    std::size_t n = 0;
    for (const auto &log : logs)
        n += log.spans.size();
    return n;
}

/** RAII: leave the profiler disabled and empty whatever happens. */
struct ProfReset
{
    ~ProfReset() { prof::reset(); }
};

} // namespace

TEST(Profiler, DisabledByDefaultAndRecordsNothing)
{
    ProfReset guard;
    EXPECT_FALSE(prof::enabled());
    {
        PROF_SCOPE("should_not_appear");
        PROF_COUNTER("nor_this", 1.0);
    }
    EXPECT_EQ(totalSpans(prof::collect()), 0u);
}

TEST(Profiler, DisabledScopeStaysCheap)
{
    ProfReset guard;
    ASSERT_FALSE(prof::enabled());
    // The disabled path is one relaxed atomic load and a branch; a
    // generous bound of 200ns mean per iteration catches accidental
    // clock reads or allocations (a steady_clock read alone is
    // ~20-40ns, an allocation far more) without flaking on slow CI.
    constexpr int iterations = 1'000'000;
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < iterations; ++i) {
        PROF_SCOPE("hot");
    }
    const auto elapsed = std::chrono::steady_clock::now() - start;
    const double meanNs =
        std::chrono::duration<double, std::nano>(elapsed).count() /
        iterations;
    EXPECT_LT(meanNs, 200.0);
    EXPECT_EQ(totalSpans(prof::collect()), 0u);
}

TEST(Profiler, EnabledSessionCapturesSpansAndCounters)
{
    ProfReset guard;
    prof::enable();
    ASSERT_TRUE(prof::enabled());
    prof::setCurrentThreadName("prof-test-main");
    {
        PROF_SCOPE("outer");
        {
            PROF_SCOPE("inner");
        }
        PROF_COUNTER("queue_depth", 7.0);
    }
    prof::disable();

    auto logs = prof::collect();
    const prof::ThreadLog *mine = nullptr;
    for (const auto &log : logs)
        if (log.name == "prof-test-main")
            mine = &log;
    ASSERT_NE(mine, nullptr);
    ASSERT_GE(mine->spans.size(), 2u);
    // Scopes close inner-first, so "inner" precedes "outer".
    EXPECT_STREQ(mine->spans[0].name, "inner");
    EXPECT_STREQ(mine->spans[1].name, "outer");
    for (const auto &span : mine->spans)
        EXPECT_LE(span.startNs, span.endNs) << span.name;
    // "outer" fully contains "inner".
    EXPECT_LE(mine->spans[1].startNs, mine->spans[0].startNs);
    EXPECT_GE(mine->spans[1].endNs, mine->spans[0].endNs);
    ASSERT_EQ(mine->counters.size(), 1u);
    EXPECT_STREQ(mine->counters[0].name, "queue_depth");
    EXPECT_DOUBLE_EQ(mine->counters[0].value, 7.0);
}

TEST(Profiler, CollectsFromThreadsThatAlreadyExited)
{
    ProfReset guard;
    prof::enable();
    constexpr int workers = 4;
    constexpr int spansPer = 16;
    std::vector<std::thread> threads;
    for (int t = 0; t < workers; ++t) {
        threads.emplace_back([t]() {
            prof::setCurrentThreadName("prof-test-wk-" +
                                       std::to_string(t));
            for (int i = 0; i < spansPer; ++i) {
                PROF_SCOPE("worker_span");
            }
        });
    }
    for (auto &thread : threads)
        thread.join();
    prof::disable();

    auto logs = prof::collect();
    int seen = 0;
    for (const auto &log : logs) {
        if (log.name.rfind("prof-test-wk-", 0) != 0)
            continue;
        ++seen;
        EXPECT_EQ(log.spans.size(),
                  static_cast<std::size_t>(spansPer))
            << log.name;
    }
    EXPECT_EQ(seen, workers);
}

TEST(Profiler, EnableClearsThePreviousSession)
{
    ProfReset guard;
    prof::enable();
    {
        PROF_SCOPE("stale");
    }
    prof::disable();
    ASSERT_GE(totalSpans(prof::collect()), 1u);

    prof::enable();
    {
        PROF_SCOPE("fresh");
    }
    prof::disable();
    auto logs = prof::collect();
    ASSERT_EQ(totalSpans(logs), 1u);
    for (const auto &log : logs)
        for (const auto &span : log.spans)
            EXPECT_STREQ(span.name, "fresh");

    prof::reset();
    EXPECT_FALSE(prof::enabled());
    EXPECT_EQ(totalSpans(prof::collect()), 0u);
}

TEST(Profiler, NullNameScopeRecordsNothing)
{
    ProfReset guard;
    prof::enable();
    {
        prof::Scope scope(nullptr);
    }
    prof::disable();
    EXPECT_EQ(totalSpans(prof::collect()), 0u);
}

TEST(Profiler, InternNameIsStableAndDeduplicated)
{
    std::string dynamic = "run baseline__astar";
    const char *a = prof::internName(dynamic);
    dynamic[0] = 'X'; // interned copy must not alias the argument
    const char *b = prof::internName("run baseline__astar");
    EXPECT_EQ(a, b);
    EXPECT_STREQ(a, "run baseline__astar");
    EXPECT_NE(prof::internName("run other"), a);
}
