/** @file Tests for Flip-N-Write and LADDER's constrained variant. */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "ctrl/fnw.hh"

namespace ladder
{
namespace
{

LineData
randomLine(Rng &rng)
{
    LineData line;
    for (auto &byte : line)
        byte = static_cast<std::uint8_t>(rng.nextBounded(256));
    return line;
}

TEST(Fnw, OffNeverFlips)
{
    LineData stored = filledLine(0xff);
    LineData data = filledLine(0x00);
    FnwDecision d = fnwDecide(stored, data, FnwMode::Off);
    EXPECT_FALSE(d.flip);
    EXPECT_EQ(d.data, data);
    EXPECT_EQ(d.transitions, 512u);
    EXPECT_EQ(d.resets, 512u);
}

TEST(Fnw, ClassicalFlipsWhenCheaper)
{
    // Storing all-zeros over stored all-ones: writing the inverted
    // data (all-ones) needs zero transitions.
    LineData stored = filledLine(0xff);
    LineData data = filledLine(0x00);
    FnwDecision d = fnwDecide(stored, data, FnwMode::Classical);
    EXPECT_TRUE(d.flip);
    EXPECT_EQ(d.data, filledLine(0xff));
    EXPECT_EQ(d.transitions, 0u);
}

TEST(Fnw, ClassicalKeepsWhenCheaper)
{
    LineData stored = filledLine(0x0f);
    LineData data = filledLine(0x0f);
    FnwDecision d = fnwDecide(stored, data, FnwMode::Classical);
    EXPECT_FALSE(d.flip);
    EXPECT_EQ(d.transitions, 0u);
}

TEST(Fnw, ConstrainedVetoesOneIncreasingFlips)
{
    // Stored all-ones, writing mostly-zero data: the flip would be
    // cheap but stores many more '1's than the original data, so the
    // LADDER constraint cancels it.
    LineData stored = filledLine(0xff);
    LineData data = filledLine(0x00);
    data[0] = 0x01;
    FnwDecision d = fnwDecide(stored, data, FnwMode::Constrained);
    EXPECT_FALSE(d.flip);
    EXPECT_TRUE(d.flipCancelled);
    EXPECT_EQ(d.data, data);
}

TEST(Fnw, ConstrainedAllowsOneDecreasingFlips)
{
    // Writing dense data over stored dense data: flipping reduces
    // both transitions and the number of '1's -> allowed.
    LineData stored = filledLine(0x00);
    LineData data = filledLine(0xfe);
    FnwDecision d = fnwDecide(stored, data, FnwMode::Constrained);
    EXPECT_TRUE(d.flip);
    EXPECT_FALSE(d.flipCancelled);
    EXPECT_LE(popcountLine(d.data), popcountLine(data));
}

class FnwProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(FnwProperty, ClassicalNeverWorseThanPlain)
{
    Rng rng(GetParam());
    for (int i = 0; i < 100; ++i) {
        LineData stored = randomLine(rng);
        LineData data = randomLine(rng);
        FnwDecision d = fnwDecide(stored, data, FnwMode::Classical);
        EXPECT_LE(d.transitions, hammingLine(stored, data));
        // The written variant decodes back to the data.
        LineData logical = d.flip ? invertLine(d.data) : d.data;
        EXPECT_EQ(logical, data);
    }
}

TEST_P(FnwProperty, ConstrainedNeverIncreasesOnes)
{
    Rng rng(GetParam() + 1000);
    for (int i = 0; i < 100; ++i) {
        LineData stored = randomLine(rng);
        LineData data = randomLine(rng);
        FnwDecision d = fnwDecide(stored, data, FnwMode::Constrained);
        // Counting-safety: what lands in the array never holds more
        // '1's than the unflipped data.
        EXPECT_LE(popcountLine(d.data), popcountLine(data));
    }
}

TEST_P(FnwProperty, TransitionCountsConsistent)
{
    Rng rng(GetParam() + 2000);
    for (int i = 0; i < 50; ++i) {
        LineData stored = randomLine(rng);
        LineData data = randomLine(rng);
        for (FnwMode mode : {FnwMode::Off, FnwMode::Classical,
                             FnwMode::Constrained}) {
            FnwDecision d = fnwDecide(stored, data, mode);
            EXPECT_EQ(d.transitions, d.resets + d.sets);
            EXPECT_EQ(d.transitions, hammingLine(stored, d.data));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FnwProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(Fnw, CancelledFractionIsSmallOnTypicalData)
{
    // The paper reports < 4% of beneficial flips cancelled by the
    // constraint; on balanced random data the rate is somewhat higher
    // but must stay a small minority overall.
    Rng rng(99);
    unsigned flipsWanted = 0, cancelled = 0;
    for (int i = 0; i < 2000; ++i) {
        LineData stored = randomLine(rng);
        LineData data = randomLine(rng);
        FnwDecision classical =
            fnwDecide(stored, data, FnwMode::Classical);
        FnwDecision constrained =
            fnwDecide(stored, data, FnwMode::Constrained);
        flipsWanted += classical.flip;
        cancelled += constrained.flipCancelled;
    }
    EXPECT_LE(cancelled, flipsWanted);
    EXPECT_LT(cancelled, 1200u);
}

} // namespace
} // namespace ladder
