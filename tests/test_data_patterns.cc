/** @file Tests for the memory-content pattern models. */

#include <gtest/gtest.h>

#include <cstring>

#include "common/rng.hh"
#include "trace/data_patterns.hh"

namespace ladder
{
namespace
{

double
measuredDensity(const DataPatternModel &model, int lines = 500)
{
    Rng rng(17);
    std::uint64_t ones = 0;
    for (int i = 0; i < lines; ++i)
        ones += popcountLine(model.generateLine(rng));
    return static_cast<double>(ones) /
           (static_cast<double>(lines) * lineBytes);
}

TEST(DataPatterns, ZeroClassIsNearlyEmpty)
{
    DataPatternModel model(PatternMix{1, 0, 0, 0, 0, 0});
    EXPECT_LT(measuredDensity(model), 0.2);
}

TEST(DataPatterns, RandomClassIsDense)
{
    DataPatternModel model(PatternMix{0, 0, 0, 0, 0, 1});
    EXPECT_NEAR(measuredDensity(model), 3.8, 0.4);
}

TEST(DataPatterns, ClassDensityOrdering)
{
    double zero =
        measuredDensity(DataPatternModel({1, 0, 0, 0, 0, 0}));
    double ints =
        measuredDensity(DataPatternModel({0, 1, 0, 0, 0, 0}));
    double fp = measuredDensity(DataPatternModel({0, 0, 1, 0, 0, 0}));
    double rnd =
        measuredDensity(DataPatternModel({0, 0, 0, 0, 0, 1}));
    EXPECT_LT(zero, ints);
    EXPECT_LT(ints, rnd);
    EXPECT_LT(fp, rnd);
}

TEST(DataPatterns, TextIsPrintable)
{
    DataPatternModel model(PatternMix{0, 0, 0, 0, 1, 0});
    Rng rng(3);
    LineData line = model.generateLine(rng);
    for (auto byte : line) {
        if (byte == 0)
            continue; // empty slots allowed
        EXPECT_GE(byte, 0x20);
        EXPECT_LE(byte, 0x7e);
    }
}

TEST(DataPatterns, PointersAreCanonical)
{
    DataPatternModel model(PatternMix{0, 0, 0, 1, 0, 0});
    Rng rng(4);
    for (int i = 0; i < 20; ++i) {
        LineData line = model.generateLine(rng);
        for (unsigned w = 0; w < 8; ++w) {
            std::uint64_t word;
            std::memcpy(&word, line.data() + w * 8, 8);
            if (word == 0)
                continue; // null pointer
            EXPECT_EQ(word >> 40, 0x7full) << "word " << w;
            EXPECT_EQ(word & 7, 0u); // aligned
        }
    }
}

TEST(DataPatterns, WordsMatchLineDistribution)
{
    DataPatternModel model(PatternMix{0, 1, 0, 0, 0, 0});
    Rng rng(5);
    double total = 0.0;
    constexpr int draws = 500;
    for (int i = 0; i < draws; ++i) {
        auto word = model.generateWord(rng);
        unsigned ones = 0;
        for (auto b : word)
            ones += popcount8(b);
        // Negative ints sign-extend to dense words; positives are
        // sparse.
        EXPECT_LE(ones, 64u);
        total += ones;
    }
    EXPECT_LT(total / draws, 20.0);
}

TEST(DataPatterns, Deterministic)
{
    DataPatternModel model(PatternMix{1, 1, 1, 1, 1, 1});
    Rng a(9), b(9);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(model.generateLine(a), model.generateLine(b));
}

TEST(DataPatterns, ZeroTotalWeightRejected)
{
    EXPECT_THROW(DataPatternModel(PatternMix{}), std::logic_error);
}

TEST(DataPatterns, ExpectedDensityTracksMeasured)
{
    DataPatternModel model(PatternMix{2, 2, 2, 1, 1, 0.5});
    double expect = model.expectedDensity(); // ones per byte
    double measured = measuredDensity(model);
    // The estimate is coarse; require the right order of magnitude.
    EXPECT_GT(measured, 0.25 * expect);
    EXPECT_LT(measured, 2.5 * expect);
}

} // namespace
} // namespace ladder
