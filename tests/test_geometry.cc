/** @file Tests for memory geometry and address decoding. */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hh"
#include "reram/geometry.hh"

namespace ladder
{
namespace
{

TEST(Geometry, CapacityArithmetic)
{
    MemoryGeometry geo;
    EXPECT_EQ(geo.totalBanks(), 2u * 2u * 8u);
    EXPECT_EQ(geo.pagesPerBank(), 64ull * 512ull);
    EXPECT_EQ(geo.capacityBytes(),
              geo.totalBanks() * geo.pagesPerBank() * 4096ull);
}

TEST(Geometry, DecodeFieldsInRange)
{
    MemoryGeometry geo;
    AddressMap map(geo);
    Rng rng(1);
    for (int i = 0; i < 2000; ++i) {
        Addr addr = rng.nextBounded(map.totalPages()) *
                        MemoryGeometry::pageBytes +
                    rng.nextBounded(64) * lineBytes;
        BlockLocation loc = map.decode(addr);
        EXPECT_LT(loc.channel, geo.channels);
        EXPECT_LT(loc.rank, geo.ranksPerChannel);
        EXPECT_LT(loc.bank, geo.banksPerRank);
        EXPECT_LT(loc.matGroup, geo.matGroupsPerBank);
        EXPECT_LT(loc.wordline, geo.matRows);
        EXPECT_LT(loc.blockInPage, 64u);
        EXPECT_LE(loc.worstBitline(), 511u);
    }
}

class DecodeEncodeRoundTrip
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(DecodeEncodeRoundTrip, Bijective)
{
    MemoryGeometry geo;
    AddressMap map(geo);
    Rng rng(GetParam());
    for (int i = 0; i < 500; ++i) {
        Addr addr = rng.nextBounded(map.totalPages()) *
                        MemoryGeometry::pageBytes +
                    rng.nextBounded(64) * lineBytes;
        BlockLocation loc = map.decode(addr);
        EXPECT_EQ(map.encode(loc), addr);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecodeEncodeRoundTrip,
                         ::testing::Values(1u, 2u, 3u, 4u));

TEST(Geometry, PagesInterleaveChannelsFirst)
{
    MemoryGeometry geo;
    AddressMap map(geo);
    BlockLocation a = map.decode(0);
    BlockLocation b = map.decode(MemoryGeometry::pageBytes);
    EXPECT_NE(a.channel, b.channel);
}

TEST(Geometry, SmallFootprintsSweepWordlinesAndSubarrays)
{
    // Even small working sets must exercise (a) a large part of the
    // wordline (location) range and (b) many concurrent
    // (bank, subarray) slots.
    MemoryGeometry geo;
    AddressMap map(geo);
    std::set<unsigned> wordlines;
    std::set<unsigned> slots;
    for (std::uint64_t p = 0; p < 1024; ++p) {
        BlockLocation loc =
            map.decode(p * MemoryGeometry::pageBytes);
        wordlines.insert(loc.wordline);
        slots.insert(((loc.rank * geo.banksPerRank + loc.bank) << 8) |
                     (loc.matGroup % 4));
    }
    EXPECT_GT(wordlines.size(), 250u);
    EXPECT_EQ(slots.size(), 64u); // 16 banks x 4 subarrays
    // A larger footprint reaches every wordline.
    for (std::uint64_t p = 1024; p < 40000; ++p)
        wordlines.insert(
            map.decode(p * MemoryGeometry::pageBytes).wordline);
    EXPECT_EQ(wordlines.size(), 512u);
}

TEST(Geometry, BlocksOfAPageShareWordlineAndBank)
{
    MemoryGeometry geo;
    AddressMap map(geo);
    Addr page = 12345 * MemoryGeometry::pageBytes;
    BlockLocation first = map.decode(page);
    for (unsigned b = 1; b < 64; ++b) {
        BlockLocation loc = map.decode(page + b * lineBytes);
        EXPECT_EQ(loc.wordline, first.wordline);
        EXPECT_EQ(loc.channel, first.channel);
        EXPECT_EQ(loc.bank, first.bank);
        EXPECT_EQ(loc.matGroup, first.matGroup);
        EXPECT_EQ(loc.blockInPage, b);
    }
}

TEST(Geometry, WorstBitlineOfLastBlock)
{
    BlockLocation loc;
    loc.blockInPage = 63;
    EXPECT_EQ(loc.worstBitline(), 511u);
}

TEST(Geometry, FlatBankUnique)
{
    MemoryGeometry geo;
    AddressMap map(geo);
    std::set<unsigned> banks;
    for (std::uint64_t p = 0; p < geo.totalBanks() * 2; ++p)
        banks.insert(map.decode(p * MemoryGeometry::pageBytes)
                         .flatBank(geo));
    // Pages sweep wordlines before banks within a channel, so the
    // first pages only cover the channels.
    EXPECT_GE(banks.size(), geo.channels);
}

TEST(Geometry, OutOfRangeAddressPanics)
{
    MemoryGeometry geo;
    AddressMap map(geo);
    Addr beyond = map.totalPages() * MemoryGeometry::pageBytes;
    EXPECT_THROW(map.decode(beyond), std::logic_error);
}

} // namespace
} // namespace ladder
