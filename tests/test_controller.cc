/** @file Integration tests for the memory controller. */

#include <gtest/gtest.h>

#include <memory>

#include "common/rng.hh"
#include "ctrl/controller.hh"
#include "ctrl/trace_sink.hh"
#include "schemes/factory.hh"
#include "schemes/ladder_schemes.hh"

namespace ladder
{
namespace
{

struct Rig
{
    EventQueue events;
    MemoryGeometry geo;
    BackingStore store;
    const TimingModel &timing;
    std::shared_ptr<MetadataLayout> layout;
    std::vector<std::unique_ptr<MemoryController>> controllers;

    explicit Rig(SchemeKind kind,
                 ControllerConfig cfg = ControllerConfig{})
        : store(geo, true, 0.0),
          timing(cachedTimingModel(CrossbarParams{}))
    {
        AddressMap map(geo);
        layout = std::make_shared<MetadataLayout>(
            geo, map.totalPages() * 3 / 4);
        auto scheme =
            makeScheme(kind, CrossbarParams{}, layout, {});
        for (unsigned ch = 0; ch < geo.channels; ++ch)
            controllers.push_back(
                std::make_unique<MemoryController>(
                    events, cfg, geo, ch, store, timing, scheme));
    }

    MemoryController &
    route(Addr addr)
    {
        AddressMap map(geo);
        return *controllers[map.decode(addr).channel];
    }

    /** Blocking read helper. */
    LineData
    readNow(Addr addr)
    {
        LineData out{};
        bool done = false;
        route(addr).enqueueRead(addr,
                                [&](const LineData &d, Tick) {
                                    out = d;
                                    done = true;
                                });
        events.runUntil();
        EXPECT_TRUE(done);
        return out;
    }
};

LineData
patternLine(std::uint8_t seed)
{
    LineData line;
    for (unsigned i = 0; i < lineBytes; ++i)
        line[i] = static_cast<std::uint8_t>(seed + i * 7);
    return line;
}

class RoundTrip : public ::testing::TestWithParam<SchemeKind>
{
};

TEST_P(RoundTrip, WriteThenReadReturnsData)
{
    Rig rig(GetParam());
    Rng rng(1);
    std::vector<std::pair<Addr, LineData>> writes;
    for (int i = 0; i < 40; ++i) {
        Addr addr = rng.nextBounded(4096) * lineBytes;
        LineData data = patternLine(
            static_cast<std::uint8_t>(rng.nextBounded(256)));
        writes.emplace_back(addr, data);
        rig.route(addr).enqueueWrite(addr, data);
    }
    rig.events.runUntil();
    // Last write to each address wins.
    std::unordered_map<Addr, LineData> expect;
    for (auto &w : writes)
        expect[w.first] = w.second;
    for (auto &w : expect)
        EXPECT_EQ(rig.readNow(w.first), w.second)
            << "addr " << w.first;
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, RoundTrip,
    ::testing::Values(SchemeKind::Baseline, SchemeKind::Location,
                      SchemeKind::SplitReset, SchemeKind::Blp,
                      SchemeKind::LadderBasic, SchemeKind::LadderEst,
                      SchemeKind::LadderEstNoShift,
                      SchemeKind::LadderHybrid, SchemeKind::Oracle));

TEST(Controller, ReadForwardsFromWriteQueue)
{
    Rig rig(SchemeKind::Baseline);
    Addr addr = 128 * lineBytes;
    LineData data = patternLine(9);
    rig.route(addr).enqueueWrite(addr, data);
    // Read immediately: must forward the queued write's data quickly.
    LineData out{};
    Tick when = 0;
    rig.route(addr).enqueueRead(addr, [&](const LineData &d, Tick t) {
        out = d;
        when = t;
    });
    rig.events.runUntil();
    EXPECT_EQ(out, data);
    EXPECT_LE(when, nsToTicks(20.0)); // ~tCL, not a full write wait
}

TEST(Controller, CoalescesQueuedWrites)
{
    Rig rig(SchemeKind::Baseline);
    Addr addr = 999 * lineBytes;
    rig.route(addr).enqueueWrite(addr, patternLine(1));
    rig.route(addr).enqueueWrite(addr, patternLine(2));
    rig.events.runUntil();
    MemoryController &ctrl = rig.route(addr);
    EXPECT_EQ(ctrl.dataWrites.value(), 1.0);
    EXPECT_EQ(rig.readNow(addr), patternLine(2));
}

TEST(Controller, QueueCapacityIsEnforced)
{
    Rig rig(SchemeKind::Baseline);
    MemoryController &ctrl = *rig.controllers[0];
    // Fill the write queue without running the clock.
    AddressMap map(rig.geo);
    unsigned accepted = 0;
    for (std::uint64_t i = 0; i < 10000 && ctrl.canAcceptWrite();
         ++i) {
        Addr addr = i * lineBytes * 2;
        if (map.decode(addr).channel != 0)
            continue;
        ctrl.enqueueWrite(addr, patternLine(0));
        ++accepted;
    }
    EXPECT_FALSE(ctrl.canAcceptWrite());
    EXPECT_EQ(accepted, 64u);
    EXPECT_THROW(ctrl.enqueueWrite(0, patternLine(0)),
                 std::logic_error);
    // Draining frees space and fires retry listeners.
    bool retried = false;
    ctrl.addRetryListener([&]() { retried = true; });
    rig.events.runUntil();
    EXPECT_TRUE(ctrl.canAcceptWrite());
    EXPECT_TRUE(retried);
}

TEST(Controller, BaselineUsesWorstCaseLatency)
{
    Rig rig(SchemeKind::Baseline);
    Addr addr = 0;
    rig.route(addr).enqueueWrite(addr, patternLine(3));
    rig.events.runUntil();
    MemoryController &ctrl = rig.route(addr);
    EXPECT_NEAR(ctrl.writeLatencyOnlyNs.mean(), 658.0, 1.0);
}

TEST(Controller, LocationSchemeFasterOnNearRows)
{
    // Page 0 decodes to wordline 0 (near); compare with a far page.
    Rig near(SchemeKind::Location);
    Rig far(SchemeKind::Location);
    MemoryGeometry geo;
    AddressMap map(geo);
    // Find pages with wordline 0 and 511 on channel 0.
    Addr nearAddr = invalidAddr, farAddr = invalidAddr;
    for (std::uint64_t p = 0; p < 4096; ++p) {
        BlockLocation loc = map.decode(p * 4096);
        if (loc.channel != 0)
            continue;
        if (loc.wordline == 0 && nearAddr == invalidAddr)
            nearAddr = p * 4096;
        if (loc.wordline == 511 && farAddr == invalidAddr)
            farAddr = p * 4096 + 63 * lineBytes;
    }
    ASSERT_NE(nearAddr, invalidAddr);
    ASSERT_NE(farAddr, invalidAddr);
    near.route(nearAddr).enqueueWrite(nearAddr, patternLine(1));
    near.events.runUntil();
    far.route(farAddr).enqueueWrite(farAddr, patternLine(1));
    far.events.runUntil();
    EXPECT_LT(near.route(nearAddr).writeLatencyOnlyNs.mean(),
              far.route(farAddr).writeLatencyOnlyNs.mean());
}

TEST(Controller, LadderBasicIssuesSmbAndMetadataReads)
{
    Rig rig(SchemeKind::LadderBasic);
    Addr addr = 512 * lineBytes;
    rig.route(addr).enqueueWrite(addr, patternLine(5));
    rig.events.runUntil();
    MemoryController &ctrl = rig.route(addr);
    EXPECT_EQ(ctrl.smbReads.value(), 1.0);
    EXPECT_EQ(ctrl.metadataReads.value(), 2.0); // two half-lines
    EXPECT_EQ(ctrl.dataWrites.value(), 1.0);
}

TEST(Controller, LadderEstIssuesOneMetadataRead)
{
    Rig rig(SchemeKind::LadderEst);
    Addr addr = 512 * lineBytes;
    rig.route(addr).enqueueWrite(addr, patternLine(5));
    rig.events.runUntil();
    MemoryController &ctrl = rig.route(addr);
    EXPECT_EQ(ctrl.smbReads.value(), 0.0);
    EXPECT_EQ(ctrl.metadataReads.value(), 1.0);
}

TEST(Controller, MetadataCacheHitsAvoidRefills)
{
    Rig rig(SchemeKind::LadderEst);
    // Two writes to the same page share the metadata line.
    Addr page = 4096 * 8;
    rig.route(page).enqueueWrite(page, patternLine(1));
    rig.route(page).enqueueWrite(page + lineBytes, patternLine(2));
    rig.events.runUntil();
    MemoryController &ctrl = rig.route(page);
    EXPECT_EQ(ctrl.metadataReads.value(), 1.0);
}

TEST(Controller, OracleFasterThanBaselineOnSparseData)
{
    Rig base(SchemeKind::Baseline);
    Rig oracle(SchemeKind::Oracle);
    Addr addr = 0;
    LineData sparse = filledLine(0x00);
    sparse[0] = 1;
    base.route(addr).enqueueWrite(addr, sparse);
    base.events.runUntil();
    oracle.route(addr).enqueueWrite(addr, sparse);
    oracle.events.runUntil();
    EXPECT_LT(oracle.route(addr).writeLatencyOnlyNs.mean(),
              base.route(addr).writeLatencyOnlyNs.mean());
}

TEST(Controller, FunctionalAccessRoundTrip)
{
    Rig rig(SchemeKind::LadderEst);
    Addr addr = 777 * lineBytes;
    LineData data = patternLine(42);
    rig.route(addr).functionalWrite(addr, data);
    EXPECT_EQ(rig.route(addr).functionalRead(addr), data);
    // Timed read agrees with functional write.
    EXPECT_EQ(rig.readNow(addr), data);
    // No timed stats were touched by the functional write.
    EXPECT_EQ(rig.route(addr).dataWrites.value(), 0.0);
}

TEST(Controller, ReadLatencyIncludesQueueing)
{
    Rig rig(SchemeKind::Baseline);
    // Saturate one bank with reads; later ones must queue.
    MemoryGeometry geo;
    AddressMap map(geo);
    Addr page = invalidAddr;
    for (std::uint64_t p = 0; p < 64; ++p) {
        if (map.decode(p * 4096).channel == 0) {
            page = p * 4096;
            break;
        }
    }
    ASSERT_NE(page, invalidAddr);
    MemoryController &ctrl = rig.route(page);
    unsigned issued = 0;
    for (unsigned i = 0; i < 8; ++i) {
        ctrl.enqueueRead(page + i * lineBytes,
                         [](const LineData &, Tick) {});
        ++issued;
    }
    rig.events.runUntil();
    // Same bank: the mean is well above a single service time.
    EXPECT_GT(ctrl.readLatencyNs.mean(), 32.5);
    EXPECT_EQ(ctrl.dataReads.value(), static_cast<double>(issued));
}

/**
 * The surface-off differential: with `latency.surface=` disabled the
 * controller consults the bucketed tables directly; with it enabled it
 * reads the precomputed dense surfaces. The two paths must choose a
 * bit-identical tWR for every write of every scheme — the surfaces are
 * a pure host-side optimization.
 */
class SurfaceDifferential : public ::testing::TestWithParam<SchemeKind>
{
};

TEST_P(SurfaceDifferential, IdenticalPerWriteRecords)
{
    ControllerConfig tableCfg;
    tableCfg.latencySurface = false;
    Rig surfaceRig(GetParam());
    Rig tableRig(GetParam(), tableCfg);
    ASSERT_TRUE(surfaceRig.controllers[0]->surfaceEnabled());
    ASSERT_FALSE(tableRig.controllers[0]->surfaceEnabled());

    std::vector<WriteTraceSink> surfaceSinks(
        surfaceRig.controllers.size());
    std::vector<WriteTraceSink> tableSinks(tableRig.controllers.size());
    for (std::size_t ch = 0; ch < surfaceRig.controllers.size(); ++ch) {
        surfaceRig.controllers[ch]->setTraceSink(&surfaceSinks[ch]);
        tableRig.controllers[ch]->setTraceSink(&tableSinks[ch]);
    }

    // A content mix that spans the surface axes: sparse, dense, and
    // random lines over addresses that hit many wordline/bitline
    // regions.
    Rng rng(17);
    for (int i = 0; i < 120; ++i) {
        Addr addr = rng.nextBounded(8192) * lineBytes;
        LineData data;
        switch (i % 4) {
        case 0:
            data = filledLine(0x00);
            data[i % lineBytes] = 0x01;
            break;
        case 1:
            data = filledLine(0xff);
            break;
        case 2:
            data = patternLine(static_cast<std::uint8_t>(i));
            break;
        default:
            for (auto &byte : data)
                byte = static_cast<std::uint8_t>(rng.nextBounded(256));
            break;
        }
        surfaceRig.route(addr).enqueueWrite(addr, data);
        tableRig.route(addr).enqueueWrite(addr, data);
    }
    surfaceRig.events.runUntil();
    tableRig.events.runUntil();

    std::size_t writesSeen = 0;
    for (std::size_t ch = 0; ch < surfaceSinks.size(); ++ch) {
        const auto &sur = surfaceSinks[ch].records();
        const auto &tab = tableSinks[ch].records();
        ASSERT_EQ(sur.size(), tab.size()) << "channel " << ch;
        for (std::size_t i = 0; i < sur.size(); ++i) {
            EXPECT_EQ(sur[i].tick, tab[i].tick)
                << "channel " << ch << " record " << i;
            EXPECT_EQ(sur[i].kind, tab[i].kind);
            EXPECT_EQ(sur[i].wordline, tab[i].wordline);
            EXPECT_EQ(sur[i].bitline, tab[i].bitline);
            EXPECT_EQ(sur[i].lrsCount, tab[i].lrsCount);
            // Bit-identical chosen tWR, not merely close.
            EXPECT_EQ(sur[i].latencyNs, tab[i].latencyNs)
                << "channel " << ch << " record " << i;
            EXPECT_EQ(sur[i].queueDepth, tab[i].queueDepth);
            if (sur[i].kind == CtrlTraceRecord::Kind::Write)
                ++writesSeen;
        }
    }
    EXPECT_GT(writesSeen, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, SurfaceDifferential,
    ::testing::Values(SchemeKind::Baseline, SchemeKind::Location,
                      SchemeKind::SplitReset, SchemeKind::Blp,
                      SchemeKind::LadderBasic, SchemeKind::LadderEst,
                      SchemeKind::LadderEstNoShift,
                      SchemeKind::LadderHybrid, SchemeKind::Oracle));

TEST(Controller, InjectedWritesBypassAdmission)
{
    Rig rig(SchemeKind::Baseline);
    MemoryController &ctrl = *rig.controllers[0];
    AddressMap map(rig.geo);
    Addr addr = invalidAddr;
    for (std::uint64_t i = 0; i < 64; ++i) {
        if (map.decode(i * lineBytes).channel == 0) {
            addr = i * lineBytes;
            break;
        }
    }
    ctrl.injectWrite(addr, patternLine(8));
    rig.events.runUntil();
    EXPECT_EQ(ctrl.dataWrites.value(), 1.0);
}

} // namespace
} // namespace ladder
