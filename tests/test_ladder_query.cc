/**
 * @file
 * ladder_query engine tests against the committed fixtures in
 * tests/data/query: glob matching, sweep.json flattening, multi-run
 * merge, and the diff exit-code contract (0 clean / 1 regression /
 * 2 usage-or-load error) that CI relies on.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "sim/stats_query.hh"

using namespace ladder;

namespace
{

const std::string runA =
    std::string(LADDER_QUERY_FIXTURES) + "/runA";
const std::string runB =
    std::string(LADDER_QUERY_FIXTURES) + "/runB";

int
runQuery(const std::vector<std::string> &args,
         std::string *outText = nullptr,
         std::string *errText = nullptr)
{
    std::ostringstream out, err;
    int rc = ladderQueryMain(args, out, err);
    if (outText)
        *outText = out.str();
    if (errText)
        *errText = err.str();
    return rc;
}

} // namespace

TEST(StatGlob, Basics)
{
    EXPECT_TRUE(statGlobMatch("", "anything.at.all"));
    EXPECT_TRUE(statGlobMatch("*", "anything"));
    EXPECT_TRUE(statGlobMatch("ctrl.*latency*",
                              "ctrl.write_latency.mean"));
    EXPECT_FALSE(statGlobMatch("ctrl.*latency*",
                               "cache.l2_misses"));
    EXPECT_TRUE(statGlobMatch("*.ipc", "baseline__astar.ipc"));
    EXPECT_FALSE(statGlobMatch("*.ipc", "ipc"));
    EXPECT_TRUE(statGlobMatch("a?c", "abc"));
    EXPECT_FALSE(statGlobMatch("a?c", "ac"));
    EXPECT_TRUE(statGlobMatch("a*b*c", "a.x.b.y.c"));
    EXPECT_FALSE(statGlobMatch("a*b*c", "a.x.c"));
}

TEST(StatSource, LoadsSweepJsonFromDirectory)
{
    StatSource src;
    std::string error;
    ASSERT_TRUE(loadStatSource(runA, src, error)) << error;
    EXPECT_DOUBLE_EQ(src.values.at("LADDER-Hybrid__astar.ipc"),
                     1.1);
    EXPECT_DOUBLE_EQ(src.values.at("baseline__astar.data_reads"),
                     1000.0);
    // Every cell flattened: 2 cells x 5 result fields.
    EXPECT_EQ(src.values.size(), 10u);
}

TEST(StatSource, LoadErrorsAreReported)
{
    StatSource src;
    std::string error;
    EXPECT_FALSE(loadStatSource(runA + "/nope", src, error));
    EXPECT_NE(error.find("no such file"), std::string::npos);
}

TEST(StatDiffTest, FlagsOnlyMovesBeyondThreshold)
{
    StatSource a, b;
    std::string error;
    ASSERT_TRUE(loadStatSource(runA, a, error)) << error;
    ASSERT_TRUE(loadStatSource(runB, b, error)) << error;
    std::vector<StatDiff> diffs = diffStatSources(a, b, "", 0.02);
    ASSERT_EQ(diffs.size(), 10u);
    int flagged = 0;
    for (const StatDiff &d : diffs) {
        if (d.name == "LADDER-Hybrid__astar.ipc") {
            // 1.1 -> 0.99: a 10% regression.
            EXPECT_NEAR(d.relDelta, -0.1, 1e-9);
            EXPECT_TRUE(d.flagged);
        }
        if (d.name == "LADDER-Hybrid__astar.data_writes") {
            // 400 -> 401: 0.25%, inside a 2% threshold.
            EXPECT_FALSE(d.flagged);
        }
        flagged += d.flagged ? 1 : 0;
    }
    // ipc and avg_read_latency_ns moved ~10%; nothing else did.
    EXPECT_EQ(flagged, 2);
}

TEST(QueryCli, MergesRunsIntoOneTable)
{
    std::string out;
    ASSERT_EQ(runQuery({runA, runB}, &out), 0);
    EXPECT_NE(out.find("baseline__astar.ipc"), std::string::npos);
    EXPECT_NE(out.find("runA"), std::string::npos);
    EXPECT_NE(out.find("runB"), std::string::npos);
    EXPECT_NE(out.find("10 stats x 2 runs"), std::string::npos);
}

TEST(QueryCli, GlobSelectsRows)
{
    std::string out;
    ASSERT_EQ(runQuery({"*.ipc", runA, runB}, &out), 0);
    EXPECT_NE(out.find("2 stats x 2 runs"), std::string::npos);
    EXPECT_EQ(out.find("data_reads"), std::string::npos);
}

TEST(QueryCli, ListStatsPrintsNamesOnePerLine)
{
    std::string out;
    ASSERT_EQ(runQuery({"--list-stats", runA}, &out), 0);
    EXPECT_NE(out.find("baseline__astar.ipc\n"), std::string::npos);
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 10);
    // Globs narrow the listing; diff mode does not accept the flag.
    ASSERT_EQ(runQuery({"*.ipc", "--list-stats", runA}, &out), 0);
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 2);
    std::string err;
    EXPECT_EQ(runQuery({"diff", "--list-stats", runA, runB}, nullptr,
                       &err),
              2);
}

TEST(QueryCli, DiffExitCodeTracksThreshold)
{
    std::string out;
    // 10% moves beyond a 2% threshold: regression exit.
    EXPECT_EQ(runQuery({"diff", runA, runB, "threshold=0.02"},
                       &out),
              1);
    EXPECT_NE(out.find("REGRESSION"), std::string::npos);
    // A 20% threshold tolerates every move in the fixtures.
    EXPECT_EQ(runQuery({"diff", runA, runB, "threshold=0.2"}), 0);
    // Glob restricting to an unmoved stat also passes.
    EXPECT_EQ(runQuery({"diff", "*data_reads", runA, runB,
                        "threshold=0.02"}),
              0);
    // Identical runs never flag.
    EXPECT_EQ(runQuery({"diff", runA, runA, "threshold=0.0"}), 0);
}

TEST(QueryCli, UsageAndLoadErrorsExitTwo)
{
    std::string err;
    EXPECT_EQ(runQuery({}, nullptr, &err), 2);
    EXPECT_NE(err.find("usage:"), std::string::npos);
    EXPECT_EQ(runQuery({"diff", runA}, nullptr, &err), 2);
    EXPECT_EQ(runQuery({runA + "/missing-dir"}, nullptr, &err), 2);
    EXPECT_EQ(runQuery({"diff", runA, runB, "threshold=bogus"},
                       nullptr, &err),
              2);
}

TEST(QueryCli, MergeCsvFormat)
{
    std::string out;
    ASSERT_EQ(runQuery({runA, runB, "format=csv"}, &out), 0);
    // Header row: stat column plus one label column per run.
    EXPECT_EQ(out.rfind("stat,", 0), 0u);
    EXPECT_NE(out.find("runA"), std::string::npos);
    EXPECT_NE(out.find("runB"), std::string::npos);
    // One data row per stat, comma-separated, no table decoration.
    EXPECT_NE(out.find("LADDER-Hybrid__astar.ipc,1.1,0.99"),
              std::string::npos);
    EXPECT_EQ(out.find("stats x"), std::string::npos);
    // 1 header + 10 stat rows.
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 11);
}

TEST(QueryCli, MergeJsonFormat)
{
    std::string out;
    ASSERT_EQ(runQuery({runA, runB, "format=json"}, &out), 0);
    JsonValue doc = parseJson(out);
    ASSERT_TRUE(doc.isObject());
    ASSERT_EQ(doc.at("runs").array.size(), 2u);
    EXPECT_EQ(doc.at("runs").array[0].string, runA);
    const JsonValue &stats = doc.at("stats");
    ASSERT_TRUE(stats.isObject());
    EXPECT_EQ(stats.object.size(), 10u);
    const JsonValue &ipc = stats.at("LADDER-Hybrid__astar.ipc");
    ASSERT_EQ(ipc.array.size(), 2u);
    EXPECT_DOUBLE_EQ(ipc.array[0].number, 1.1);
    EXPECT_DOUBLE_EQ(ipc.array[1].number, 0.99);
}

TEST(QueryCli, DiffCsvKeepsExitContract)
{
    std::string out;
    EXPECT_EQ(runQuery({"diff", runA, runB, "threshold=0.02",
                        "format=csv"},
                       &out),
              1);
    EXPECT_EQ(out.rfind("stat,base,other,rel_delta,flagged", 0), 0u);
    EXPECT_NE(out.find("LADDER-Hybrid__astar.ipc,1.1,0.99,-0.1,1"),
              std::string::npos);
    // A tolerant threshold exits 0 with the same format.
    out.clear();
    EXPECT_EQ(runQuery({"diff", runA, runB, "threshold=0.2",
                        "format=csv"},
                       &out),
              0);
    EXPECT_NE(out.find(",0\n"), std::string::npos);
}

TEST(QueryCli, DiffJsonKeepsExitContract)
{
    std::string out;
    EXPECT_EQ(runQuery({"diff", runA, runB, "threshold=0.02",
                        "format=json"},
                       &out),
              1);
    JsonValue doc = parseJson(out);
    EXPECT_EQ(doc.at("base").string, runA);
    EXPECT_EQ(doc.at("other").string, runB);
    EXPECT_DOUBLE_EQ(doc.at("threshold").number, 0.02);
    EXPECT_DOUBLE_EQ(doc.at("flagged").number, 2.0);
    ASSERT_EQ(doc.at("diffs").array.size(), 10u);
    int flagged = 0;
    for (const JsonValue &d : doc.at("diffs").array) {
        ASSERT_TRUE(d.isObject());
        if (d.at("flagged").boolean)
            ++flagged;
        if (d.at("stat").string == "LADDER-Hybrid__astar.ipc")
            EXPECT_NEAR(d.at("rel_delta").number, -0.1, 1e-9);
    }
    EXPECT_EQ(flagged, 2);
    // Identical runs in json format exit 0 and report zero flagged.
    out.clear();
    EXPECT_EQ(runQuery({"diff", runA, runA, "threshold=0.0",
                        "format=json"},
                       &out),
              0);
    EXPECT_DOUBLE_EQ(parseJson(out).at("flagged").number, 0.0);
}

TEST(QueryCli, BadFormatExitsTwo)
{
    std::string err;
    EXPECT_EQ(runQuery({runA, runB, "format=bogus"}, nullptr, &err),
              2);
    EXPECT_NE(err.find("bad format"), std::string::npos);
    EXPECT_EQ(runQuery({"diff", runA, runB, "format=xml"}, nullptr,
                       &err),
              2);
}
