/**
 * @file
 * ladder_query engine tests against the committed fixtures in
 * tests/data/query: glob matching, sweep.json flattening, multi-run
 * merge, and the diff exit-code contract (0 clean / 1 regression /
 * 2 usage-or-load error) that CI relies on.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "sim/stats_query.hh"

using namespace ladder;

namespace
{

const std::string runA =
    std::string(LADDER_QUERY_FIXTURES) + "/runA";
const std::string runB =
    std::string(LADDER_QUERY_FIXTURES) + "/runB";

int
runQuery(const std::vector<std::string> &args,
         std::string *outText = nullptr,
         std::string *errText = nullptr)
{
    std::ostringstream out, err;
    int rc = ladderQueryMain(args, out, err);
    if (outText)
        *outText = out.str();
    if (errText)
        *errText = err.str();
    return rc;
}

} // namespace

TEST(StatGlob, Basics)
{
    EXPECT_TRUE(statGlobMatch("", "anything.at.all"));
    EXPECT_TRUE(statGlobMatch("*", "anything"));
    EXPECT_TRUE(statGlobMatch("ctrl.*latency*",
                              "ctrl.write_latency.mean"));
    EXPECT_FALSE(statGlobMatch("ctrl.*latency*",
                               "cache.l2_misses"));
    EXPECT_TRUE(statGlobMatch("*.ipc", "baseline__astar.ipc"));
    EXPECT_FALSE(statGlobMatch("*.ipc", "ipc"));
    EXPECT_TRUE(statGlobMatch("a?c", "abc"));
    EXPECT_FALSE(statGlobMatch("a?c", "ac"));
    EXPECT_TRUE(statGlobMatch("a*b*c", "a.x.b.y.c"));
    EXPECT_FALSE(statGlobMatch("a*b*c", "a.x.c"));
}

TEST(StatSource, LoadsSweepJsonFromDirectory)
{
    StatSource src;
    std::string error;
    ASSERT_TRUE(loadStatSource(runA, src, error)) << error;
    EXPECT_DOUBLE_EQ(src.values.at("LADDER-Hybrid__astar.ipc"),
                     1.1);
    EXPECT_DOUBLE_EQ(src.values.at("baseline__astar.data_reads"),
                     1000.0);
    // Every cell flattened: 2 cells x 5 result fields.
    EXPECT_EQ(src.values.size(), 10u);
}

TEST(StatSource, LoadErrorsAreReported)
{
    StatSource src;
    std::string error;
    EXPECT_FALSE(loadStatSource(runA + "/nope", src, error));
    EXPECT_NE(error.find("no such file"), std::string::npos);
}

TEST(StatDiffTest, FlagsOnlyMovesBeyondThreshold)
{
    StatSource a, b;
    std::string error;
    ASSERT_TRUE(loadStatSource(runA, a, error)) << error;
    ASSERT_TRUE(loadStatSource(runB, b, error)) << error;
    std::vector<StatDiff> diffs = diffStatSources(a, b, "", 0.02);
    ASSERT_EQ(diffs.size(), 10u);
    int flagged = 0;
    for (const StatDiff &d : diffs) {
        if (d.name == "LADDER-Hybrid__astar.ipc") {
            // 1.1 -> 0.99: a 10% regression.
            EXPECT_NEAR(d.relDelta, -0.1, 1e-9);
            EXPECT_TRUE(d.flagged);
        }
        if (d.name == "LADDER-Hybrid__astar.data_writes") {
            // 400 -> 401: 0.25%, inside a 2% threshold.
            EXPECT_FALSE(d.flagged);
        }
        flagged += d.flagged ? 1 : 0;
    }
    // ipc and avg_read_latency_ns moved ~10%; nothing else did.
    EXPECT_EQ(flagged, 2);
}

TEST(QueryCli, MergesRunsIntoOneTable)
{
    std::string out;
    ASSERT_EQ(runQuery({runA, runB}, &out), 0);
    EXPECT_NE(out.find("baseline__astar.ipc"), std::string::npos);
    EXPECT_NE(out.find("runA"), std::string::npos);
    EXPECT_NE(out.find("runB"), std::string::npos);
    EXPECT_NE(out.find("10 stats x 2 runs"), std::string::npos);
}

TEST(QueryCli, GlobSelectsRows)
{
    std::string out;
    ASSERT_EQ(runQuery({"*.ipc", runA, runB}, &out), 0);
    EXPECT_NE(out.find("2 stats x 2 runs"), std::string::npos);
    EXPECT_EQ(out.find("data_reads"), std::string::npos);
}

TEST(QueryCli, DiffExitCodeTracksThreshold)
{
    std::string out;
    // 10% moves beyond a 2% threshold: regression exit.
    EXPECT_EQ(runQuery({"diff", runA, runB, "threshold=0.02"},
                       &out),
              1);
    EXPECT_NE(out.find("REGRESSION"), std::string::npos);
    // A 20% threshold tolerates every move in the fixtures.
    EXPECT_EQ(runQuery({"diff", runA, runB, "threshold=0.2"}), 0);
    // Glob restricting to an unmoved stat also passes.
    EXPECT_EQ(runQuery({"diff", "*data_reads", runA, runB,
                        "threshold=0.02"}),
              0);
    // Identical runs never flag.
    EXPECT_EQ(runQuery({"diff", runA, runA, "threshold=0.0"}), 0);
}

TEST(QueryCli, UsageAndLoadErrorsExitTwo)
{
    std::string err;
    EXPECT_EQ(runQuery({}, nullptr, &err), 2);
    EXPECT_NE(err.find("usage:"), std::string::npos);
    EXPECT_EQ(runQuery({"diff", runA}, nullptr, &err), 2);
    EXPECT_EQ(runQuery({runA + "/missing-dir"}, nullptr, &err), 2);
    EXPECT_EQ(runQuery({"diff", runA, runB, "threshold=bogus"},
                       nullptr, &err),
              2);
}
