/** @file Tests for the 1S1R cell + selector model. */

#include <gtest/gtest.h>

#include "circuit/cell_model.hh"

namespace ladder
{
namespace
{

TEST(CellModel, NominalCurrentAtWriteVoltage)
{
    CrossbarParams p;
    CellModel cell(p);
    // At the full write voltage the composite must present its state
    // resistance: I(Vw) = Vw / R.
    EXPECT_NEAR(cell.current(CellState::LRS, p.writeVolts),
                p.writeVolts / p.lrsOhms, 1e-9);
    EXPECT_NEAR(cell.current(CellState::HRS, p.writeVolts),
                p.writeVolts / p.hrsOhms, 1e-12);
}

TEST(CellModel, NonlinearityMatchesKappa)
{
    CrossbarParams p;
    CellModel cell(p);
    double full = cell.current(CellState::LRS, p.writeVolts);
    double half = cell.current(CellState::LRS, p.writeVolts / 2.0);
    EXPECT_NEAR(full / half, p.selectorNonlinearity,
                p.selectorNonlinearity * 1e-6);
}

TEST(CellModel, CurrentMonotoneInVoltage)
{
    CrossbarParams p;
    CellModel cell(p);
    double prev = 0.0;
    for (double v = 0.1; v <= 3.0; v += 0.1) {
        double i = cell.current(CellState::LRS, v);
        EXPECT_GT(i, prev) << "at " << v;
        prev = i;
    }
}

TEST(CellModel, OddSymmetry)
{
    CrossbarParams p;
    CellModel cell(p);
    EXPECT_NEAR(cell.current(CellState::LRS, -1.5),
                -cell.current(CellState::LRS, 1.5), 1e-12);
}

TEST(CellModel, ConductanceFiniteAtZero)
{
    CrossbarParams p;
    CellModel cell(p);
    double g0 = cell.conductance(CellState::LRS, 0.0);
    EXPECT_GT(g0, 0.0);
    EXPECT_LT(g0, 1.0 / p.lrsOhms); // far below nominal
    // Continuity near zero.
    EXPECT_NEAR(cell.conductance(CellState::LRS, 1e-7), g0, g0 * 0.01);
}

TEST(CellModel, LrsConductsMoreThanHrs)
{
    CrossbarParams p;
    CellModel cell(p);
    for (double v : {0.5, 1.5, 3.0}) {
        EXPECT_GT(cell.conductance(CellState::LRS, v),
                  cell.conductance(CellState::HRS, v));
    }
    EXPECT_NEAR(cell.nominalConductance(CellState::LRS) /
                    cell.nominalConductance(CellState::HRS),
                p.hrsOhms / p.lrsOhms, 1e-9);
}

TEST(CellModel, HigherKappaMeansSteeper)
{
    CrossbarParams weak;
    weak.selectorNonlinearity = 10.0;
    CrossbarParams strong;
    strong.selectorNonlinearity = 1000.0;
    CellModel a(weak), b(strong);
    EXPECT_GT(b.steepness(), a.steepness());
    // Stronger selector suppresses half-select current more.
    EXPECT_LT(b.current(CellState::LRS, 1.5),
              a.current(CellState::LRS, 1.5));
}

class ConductanceConsistency
    : public ::testing::TestWithParam<double>
{
};

TEST_P(ConductanceConsistency, GEqualsIOverV)
{
    CrossbarParams p;
    CellModel cell(p);
    double v = GetParam();
    EXPECT_NEAR(cell.conductance(CellState::LRS, v) * v,
                cell.current(CellState::LRS, v), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Voltages, ConductanceConsistency,
                         ::testing::Values(0.2, 0.7, 1.5, 2.1, 3.0));

} // namespace
} // namespace ladder
