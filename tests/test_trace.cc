/** @file Tests for the synthetic trace generator. */

#include <gtest/gtest.h>

#include <set>

#include "trace/synth.hh"

namespace ladder
{
namespace
{

WorkloadParams
basicParams()
{
    WorkloadParams p;
    p.memFraction = 0.25;
    p.writeFraction = 0.3;
    p.workingSetPages = 64;
    p.streamFraction = 0.5;
    p.hotFraction = 0.3;
    p.hotPages = 8;
    p.streams = 4;
    p.seed = 5;
    return p;
}

TEST(Trace, Deterministic)
{
    SyntheticTrace a(basicParams()), b(basicParams());
    for (int i = 0; i < 500; ++i) {
        TraceRecord ra = a.next();
        TraceRecord rb = b.next();
        EXPECT_EQ(ra.lineAddr, rb.lineAddr);
        EXPECT_EQ(ra.isWrite, rb.isWrite);
        EXPECT_EQ(ra.nonMemBefore, rb.nonMemBefore);
        EXPECT_EQ(ra.storeData, rb.storeData);
    }
}

TEST(Trace, AddressesStayInWorkingSet)
{
    SyntheticTrace trace(basicParams());
    Addr limit = trace.footprintBytes();
    for (int i = 0; i < 5000; ++i) {
        TraceRecord rec = trace.next();
        EXPECT_LT(rec.lineAddr, limit);
        EXPECT_EQ(rec.lineAddr % lineBytes, 0u);
    }
}

TEST(Trace, MemoryIntensityMatchesParameter)
{
    WorkloadParams p = basicParams();
    p.memFraction = 0.2;
    SyntheticTrace trace(p);
    std::uint64_t instr = 0, memOps = 0;
    for (int i = 0; i < 20000; ++i) {
        TraceRecord rec = trace.next();
        instr += rec.nonMemBefore + 1;
        ++memOps;
    }
    double measured = static_cast<double>(memOps) /
                      static_cast<double>(instr);
    EXPECT_NEAR(measured, 0.2, 0.01);
}

TEST(Trace, WriteFractionRoughlyMatches)
{
    WorkloadParams p = basicParams();
    p.writeFraction = 0.4;
    SyntheticTrace trace(p);
    unsigned writes = 0;
    constexpr int records = 20000;
    for (int i = 0; i < records; ++i)
        writes += trace.next().isWrite;
    // Stream lines take stores at writeFraction with ~50% per-access
    // density, so the overall store share is below writeFraction but
    // well above zero.
    EXPECT_GT(writes, records / 10);
    EXPECT_LT(writes, records / 2);
}

TEST(Trace, StreamsDwellOnLines)
{
    WorkloadParams p = basicParams();
    p.streamFraction = 1.0;
    p.hotFraction = 0.0;
    p.streams = 1;
    p.dwellPerLine = 8;
    SyntheticTrace trace(p);
    // With one pure stream, consecutive records repeat each line 8
    // times before advancing.
    Addr last = trace.next().lineAddr;
    unsigned repeats = 1;
    std::vector<unsigned> runs;
    for (int i = 0; i < 200; ++i) {
        Addr addr = trace.next().lineAddr;
        if (addr == last) {
            ++repeats;
        } else {
            runs.push_back(repeats);
            repeats = 1;
            last = addr;
        }
    }
    for (unsigned run : runs)
        EXPECT_LE(run, 8u);
    // Most runs hit the full dwell.
    unsigned full = 0;
    for (unsigned run : runs)
        full += run == 8;
    EXPECT_GT(full, runs.size() / 2);
}

TEST(Trace, HotSetConcentratesAccesses)
{
    WorkloadParams p = basicParams();
    p.streamFraction = 0.0;
    p.hotFraction = 1.0;
    p.hotPages = 4;
    SyntheticTrace trace(p);
    std::set<std::uint64_t> pages;
    for (int i = 0; i < 2000; ++i)
        pages.insert(trace.next().lineAddr / 4096);
    EXPECT_LE(pages.size(), 4u);
}

TEST(Trace, DependentLoadsOnlyWhenConfigured)
{
    WorkloadParams none = basicParams();
    none.dependentFraction = 0.0;
    SyntheticTrace a(none);
    for (int i = 0; i < 2000; ++i)
        EXPECT_FALSE(a.next().dependent);

    WorkloadParams some = basicParams();
    some.streamFraction = 0.0;
    some.hotFraction = 0.0;
    some.dependentFraction = 0.5;
    SyntheticTrace b(some);
    unsigned dependent = 0;
    for (int i = 0; i < 2000; ++i) {
        TraceRecord rec = b.next();
        dependent += rec.dependent;
        if (rec.isWrite)
            EXPECT_FALSE(rec.dependent);
    }
    EXPECT_GT(dependent, 400u);
}

TEST(Trace, StoreOffsetsAligned)
{
    SyntheticTrace trace(basicParams());
    for (int i = 0; i < 5000; ++i) {
        TraceRecord rec = trace.next();
        if (rec.isWrite) {
            EXPECT_EQ(rec.storeOffset % 8, 0u);
            EXPECT_LT(rec.storeOffset, lineBytes);
        }
    }
}

TEST(Trace, DifferentSeedsDiverge)
{
    WorkloadParams p1 = basicParams();
    WorkloadParams p2 = basicParams();
    p2.seed = 6;
    SyntheticTrace a(p1), b(p2);
    unsigned same = 0;
    for (int i = 0; i < 200; ++i)
        same += a.next().lineAddr == b.next().lineAddr;
    EXPECT_LT(same, 50u);
}

} // namespace
} // namespace ladder
