/** @file Tests for the Leader hot-page remapper. */

#include <gtest/gtest.h>

#include <set>

#include "sim/experiment.hh"
#include "wear/leader.hh"

namespace ladder
{
namespace
{

TEST(Leader, IdentityUntilMigration)
{
    MemoryGeometry geo;
    LeaderRemapper remap(geo, 1 << 20, 100, 64);
    for (Addr addr : {0ull, 4096ull, 999936ull})
        EXPECT_EQ(remap.remap(addr), addr);
}

TEST(Leader, HotFarPageMigratesToNearRow)
{
    MemoryGeometry geo;
    AddressMap map(geo);
    LeaderRemapper remap(geo, 1 << 20, 50, 64);
    // Find a page on a far wordline and hammer it.
    std::uint64_t farPage = 0;
    for (std::uint64_t p = 0;; ++p) {
        if (map.decode(p * MemoryGeometry::pageBytes).wordline >=
            400) {
            farPage = p;
            break;
        }
    }
    Addr hotAddr = farPage * MemoryGeometry::pageBytes;
    for (int i = 0; i < 50; ++i)
        remap.noteDataWrite(hotAddr);
    EXPECT_EQ(remap.migrations(), 1u);
    Addr newAddr = remap.remap(hotAddr);
    EXPECT_NE(newAddr, hotAddr);
    EXPECT_LT(map.decode(newAddr).wordline, 64u);
    // The move list swaps whole pages in both directions.
    auto moves = remap.collectMoves();
    EXPECT_EQ(moves.size(), 2u * MemoryGeometry::blocksPerPage);
}

TEST(Leader, RemapStaysBijective)
{
    MemoryGeometry geo;
    AddressMap map(geo);
    LeaderRemapper remap(geo, 4096, 10, 64);
    // Drive several migrations of different hot pages.
    for (std::uint64_t hot = 0; hot < 4096; hot += 37) {
        Addr addr = hot * MemoryGeometry::pageBytes;
        if (map.decode(addr).wordline < 64)
            continue;
        for (int i = 0; i < 10; ++i)
            remap.noteDataWrite(remap.remap(addr));
        remap.collectMoves();
    }
    EXPECT_GT(remap.migrations(), 3u);
    std::set<Addr> images;
    for (std::uint64_t p = 0; p < 4096; ++p) {
        Addr image = remap.remap(p * MemoryGeometry::pageBytes);
        EXPECT_TRUE(images.insert(image).second) << "page " << p;
    }
}

TEST(Leader, NearPagesAreLeftAlone)
{
    MemoryGeometry geo;
    AddressMap map(geo);
    LeaderRemapper remap(geo, 1 << 20, 20, 64);
    std::uint64_t nearPage = 0;
    for (std::uint64_t p = 0;; ++p) {
        if (map.decode(p * MemoryGeometry::pageBytes).wordline < 64) {
            nearPage = p;
            break;
        }
    }
    Addr addr = nearPage * MemoryGeometry::pageBytes;
    for (int i = 0; i < 40; ++i)
        remap.noteDataWrite(addr);
    EXPECT_EQ(remap.migrations(), 0u);
    EXPECT_EQ(remap.remap(addr), addr);
}

TEST(Leader, SystemIntegrationImprovesLocationScheme)
{
    // With the location-only scheme, migrating hot pages near the
    // drivers must not corrupt anything and should not hurt tWR.
    ExperimentConfig cfg;
    cfg.warmupInstr = 60'000;
    cfg.measureInstr = 120'000;
    cfg.cacheScale = 1.0 / 16.0;
    SystemConfig sys =
        makeSystemConfig(SchemeKind::Location, "astar", cfg);

    System plain(sys);
    SimResult base = plain.run(cfg.warmupInstr, cfg.measureInstr);

    System leader(sys);
    AddressMap map(sys.geometry);
    LeaderRemapper remap(sys.geometry, map.totalPages() * 3 / 4,
                         20, 64);
    leader.setRemapper(&remap);
    SimResult r = leader.run(cfg.warmupInstr, cfg.measureInstr);

    EXPECT_GT(r.ipc, 0.0);
    EXPECT_GT(remap.migrations(), 0u);
    // Hot pages on fast rows: average tWR should not regress much.
    EXPECT_LT(r.avgWriteTwrNs, base.avgWriteTwrNs * 1.15);
}

} // namespace
} // namespace ladder
