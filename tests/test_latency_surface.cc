/**
 * @file
 * Contract tests for the precomputed O(1) latency surfaces
 * (reram/latency_surface.hh) — the headline gate for swapping table
 * lookups out of the controller hot path.
 *
 * Three layers of evidence, from cheap-and-exact to physical:
 *   1. Bit-identity: every surface cell and index-map entry equals
 *      what the WriteTimingTable's bucket formulas would produce
 *      (verifyAgainst + dense raw-index sweeps + boundary cases).
 *   2. Generator differential: re-evaluating the fast sneak-path
 *      model at every bucket corner reproduces every table cell with
 *      exactly zero relative error (checkSurfaceError, budget 0).
 *   3. Physics differential: on a 64x64 crossbar, every table cell is
 *      cross-checked against the full MNA solver under the explicit
 *      relative latency budget kMnaRelLatencyBudget, and the fast
 *      model agrees with MNA over an endpoint-inclusive grid
 *      (circuit/model_check.hh).
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <random>
#include <vector>

#include "circuit/fastmodel.hh"
#include "circuit/mna.hh"
#include "circuit/model_check.hh"
#include "reram/latency_surface.hh"
#include "reram/timing_tables.hh"

namespace ladder
{
namespace
{

/**
 * Relative latency budget for the surface-vs-MNA differential. The
 * fast model tracks MNA drops to ~5 mV (test_fastmodel); through the
 * calibrated exponential drop->latency law on a 64x64 array that
 * amplifies to at most a few percent of latency. 10% is a deliberate
 * 2-3x cushion so the gate flags real model drift, not solver noise.
 */
constexpr double kMnaRelLatencyBudget = 0.10;

const TimingModel &
model()
{
    return cachedTimingModel(CrossbarParams{});
}

ResetEvaluator
fastEvaluator(const SneakPathModel &fast)
{
    return [&fast](const ResetCondition &c) { return fast.evaluate(c); };
}

TEST(LatencySurface, AttachedAndBitIdentical)
{
    const TimingModel &m = model();
    ASSERT_NE(m.ladderSurface, nullptr);
    ASSERT_NE(m.blpSurface, nullptr);
    ASSERT_NE(m.locationSurface, nullptr);

    SurfaceCheckResult ladder = m.ladderSurface->verifyAgainst(m.ladder);
    EXPECT_TRUE(ladder.ok());
    EXPECT_GT(ladder.cellsChecked, 0u);
    EXPECT_EQ(ladder.mismatches, 0u);
    EXPECT_EQ(ladder.maxAbsErrorNs, 0.0);

    EXPECT_TRUE(m.blpSurface->verifyAgainst(m.blp).ok());
    EXPECT_TRUE(m.locationSurface->verifyAgainst(m.location).ok());
}

TEST(LatencySurface, ShapeMatchesTable)
{
    const TimingModel &m = model();
    const LatencySurface &s = *m.ladderSurface;
    EXPECT_EQ(s.rows(), m.ladder.rows());
    EXPECT_EQ(s.cols(), m.ladder.cols());
    EXPECT_EQ(s.regionCount(),
              m.ladder.wlBuckets() * m.ladder.blBuckets());
    // Dense content axis: one entry per possible LRS count (0..max).
    EXPECT_EQ(s.contentDense(), m.ladder.contentMax() + 1);
    EXPECT_EQ(s.entryCount(),
              static_cast<std::size_t>(s.regionCount()) *
                  s.contentDense());
    EXPECT_GT(s.storageBytes(), 0u);
    // The location table has a single content bucket, so its surface
    // collapses the content axis entirely.
    EXPECT_EQ(m.locationSurface->contentDense(), 1u);
}

TEST(LatencySurface, MatchesTableOnDenseSweeps)
{
    const TimingModel &m = model();
    const unsigned rows = m.ladder.rows();
    const unsigned cols = m.ladder.cols();
    const unsigned cmax = m.ladder.contentMax();
    // Full (bitline x content) grid at corner + middle wordlines.
    for (unsigned wl : {0u, rows / 2, rows - 1}) {
        for (unsigned bl = 0; bl < cols; ++bl) {
            for (unsigned c = 0; c <= cmax; ++c) {
                const TimingEntry &tab = m.ladder.lookup(wl, bl, c);
                const TimingEntry &sur =
                    m.ladderSurface->lookup(wl, bl, c);
                ASSERT_EQ(sur.latencyNs, tab.latencyNs)
                    << "wl " << wl << " bl " << bl << " c " << c;
                ASSERT_EQ(sur.powerMw, tab.powerMw);
            }
        }
    }
    // Full wordline sweep at bitline/content corners.
    for (unsigned wl = 0; wl < rows; ++wl) {
        for (unsigned bl : {0u, cols - 1}) {
            for (unsigned c : {0u, 1u, cmax / 2, cmax}) {
                EXPECT_EQ(m.ladderSurface->lookup(wl, bl, c).latencyNs,
                          m.ladder.lookup(wl, bl, c).latencyNs);
            }
        }
    }
}

TEST(LatencySurface, MatchesTableOnRandomTriples)
{
    const TimingModel &m = model();
    std::mt19937 rng(20260809);
    std::uniform_int_distribution<unsigned> wlD(0, m.ladder.rows() - 1);
    std::uniform_int_distribution<unsigned> blD(0, m.ladder.cols() - 1);
    // Deliberately overshoot contentMax to exercise clamping.
    std::uniform_int_distribution<unsigned> cD(
        0, m.ladder.contentMax() * 2);
    for (int i = 0; i < 50000; ++i) {
        unsigned wl = wlD(rng), bl = blD(rng), c = cD(rng);
        ASSERT_EQ(m.ladderSurface->lookup(wl, bl, c).latencyNs,
                  m.ladder.lookup(wl, bl, c).latencyNs)
            << "wl " << wl << " bl " << bl << " c " << c;
        ASSERT_EQ(m.blpSurface->lookup(wl, bl, c).latencyNs,
                  m.blp.lookup(wl, bl, c).latencyNs);
        ASSERT_EQ(m.locationSurface->lookup(wl, bl, c).latencyNs,
                  m.location.lookup(wl, bl, c).latencyNs);
    }
}

TEST(LatencySurface, BoundaryCases)
{
    const TimingModel &m = model();
    const LatencySurface &s = *m.ladderSurface;
    const unsigned rows = m.ladder.rows();
    const unsigned cols = m.ladder.cols();
    const unsigned cmax = m.ladder.contentMax();
    const unsigned wlB = m.ladder.wlBuckets();
    const unsigned blB = m.ladder.blBuckets();

    // LRS = 0 at every location corner lands in content bucket 0.
    for (unsigned wl : {0u, rows - 1}) {
        for (unsigned bl : {0u, cols - 1}) {
            unsigned wb = wl == 0 ? 0 : wlB - 1;
            unsigned bb = bl == 0 ? 0 : blB - 1;
            EXPECT_EQ(s.lookup(wl, bl, 0).latencyNs,
                      m.ladder.at(wb, bb, 0).latencyNs);
            // LRS = max lands in the last bucket.
            EXPECT_EQ(s.lookup(wl, bl, cmax).latencyNs,
                      m.ladder.at(wb, bb, m.ladder.contentBuckets() - 1)
                          .latencyNs);
        }
    }

    // Content rounds up exactly like the table: 64 LRS cells stay in
    // bucket 0, 65 tip into bucket 1 (mirrors
    // TimingTable.ContentRoundsUp).
    unsigned step = cmax / m.ladder.contentBuckets();
    EXPECT_EQ(s.lookup(rows - 1, cols - 1, step).latencyNs,
              m.ladder.at(wlB - 1, blB - 1, 0).latencyNs);
    EXPECT_EQ(s.lookup(rows - 1, cols - 1, step + 1).latencyNs,
              m.ladder.at(wlB - 1, blB - 1, 1).latencyNs);

    // Counts beyond the physical maximum clamp to the top bucket.
    EXPECT_EQ(s.lookup(rows - 1, cols - 1, 100000).latencyNs,
              s.lookup(rows - 1, cols - 1, cmax).latencyNs);

    // The location surface ignores content entirely.
    EXPECT_EQ(m.locationSurface->lookup(3, 7, 0).latencyNs,
              m.locationSurface->lookup(3, 7, cmax).latencyNs);
}

TEST(LatencySurface, LookupBatchMatchesScalar)
{
    const TimingModel &m = model();
    const LatencySurface &s = *m.ladderSurface;
    std::mt19937 rng(7);
    std::uniform_int_distribution<unsigned> wlD(0, s.rows() - 1);
    std::uniform_int_distribution<unsigned> blD(0, s.cols() - 1);
    std::uniform_int_distribution<unsigned> cD(0, s.contentDense() + 8);
    std::vector<SurfaceQuery> queries(1024);
    for (SurfaceQuery &q : queries)
        q = SurfaceQuery{wlD(rng), blD(rng), cD(rng)};

    std::vector<TimingEntry> batch = s.lookupBatch(queries);
    ASSERT_EQ(batch.size(), queries.size());
    std::vector<TimingEntry> raw(queries.size());
    s.lookupBatch(queries.data(), queries.size(), raw.data());
    for (std::size_t i = 0; i < queries.size(); ++i) {
        const TimingEntry &want = s.lookup(
            queries[i].wordline, queries[i].bitline, queries[i].lrsCount);
        EXPECT_EQ(batch[i].latencyNs, want.latencyNs);
        EXPECT_EQ(batch[i].powerMw, want.powerMw);
        EXPECT_EQ(raw[i].latencyNs, want.latencyNs);
    }
}

TEST(LatencySurface, VerifyDetectsTableDrift)
{
    const TimingModel &m = model();
    // A surface built from the LADDER table must not verify against
    // the BLP table (same shape, different physics)...
    SurfaceCheckResult drift = m.ladderSurface->verifyAgainst(m.blp);
    EXPECT_FALSE(drift.ok());
    EXPECT_GT(drift.mismatches, 0u);
    EXPECT_GT(drift.maxAbsErrorNs, 0.0);
    // ...nor against a table with a different shape.
    EXPECT_FALSE(m.ladderSurface->verifyAgainst(m.location).ok());
}

TEST(LatencySurface, GeneratingEvaluatorReproducesEveryCellExactly)
{
    // checkSurfaceError with the generating fast model as reference
    // must find zero error at *every* bucket corner — the surface (and
    // table) is a pure cache of these evaluations. Budget 0: any
    // nonzero relative error is a violation.
    const TimingModel &m = model();
    SneakPathModel fast(m.params);
    ResetEvaluator eval = fastEvaluator(fast);
    for (const WriteTimingTable *t :
         {&m.ladder, &m.blp, &m.location}) {
        SurfaceErrorReport rep =
            checkSurfaceError(m.params, *t, m.law, eval, 0.0);
        EXPECT_TRUE(rep.ok());
        EXPECT_EQ(rep.violations, 0u);
        EXPECT_EQ(rep.maxRelError, 0.0);
        EXPECT_EQ(rep.cellsChecked,
                  static_cast<std::size_t>(t->wlBuckets()) *
                      t->blBuckets() * t->contentBuckets());
    }
}

TEST(LatencySurface, DerivedModelSurfacesVerify)
{
    const TimingModel &m = model();
    CrossbarParams half = m.params;
    half.selectedCells = 4;
    TimingModel derived = TimingModel::generateDerived(half, m.law);
    ASSERT_NE(derived.ladderSurface, nullptr);
    ASSERT_NE(derived.blpSurface, nullptr);
    ASSERT_NE(derived.locationSurface, nullptr);
    EXPECT_TRUE(derived.ladderSurface->verifyAgainst(derived.ladder).ok());
    EXPECT_TRUE(derived.blpSurface->verifyAgainst(derived.blp).ok());
    EXPECT_TRUE(
        derived.locationSurface->verifyAgainst(derived.location).ok());
}

/**
 * The physics gate: on a 64x64 crossbar (MNA-tractable; the scale
 * test_fastmodel cross-validates at), every cell of every table —
 * and therefore every distinct value of every surface — must agree
 * with a direct full-MNA evaluation within kMnaRelLatencyBudget.
 */
TEST(LatencySurfaceMna, EveryCellWithinBudgetOfMna)
{
    CrossbarParams p;
    p.rows = 64;
    p.cols = 64;
    TimingModel small = TimingModel::generate(p, 4);
    CrossbarMna mna(p);
    ResetEvaluator ref = [&mna](const ResetCondition &c) {
        return mna.evaluate(c);
    };
    for (const WriteTimingTable *t :
         {&small.ladder, &small.blp, &small.location}) {
        SurfaceErrorReport rep = checkSurfaceError(
            p, *t, small.law, ref, kMnaRelLatencyBudget);
        EXPECT_TRUE(rep.ok())
            << "violations " << rep.violations << " of "
            << rep.cellsChecked << ", max rel error "
            << rep.maxRelError;
        EXPECT_EQ(rep.cellsChecked,
                  static_cast<std::size_t>(t->wlBuckets()) *
                      t->blBuckets() * t->contentBuckets());
    }
    // The surfaces are bit-identical to these tables, so the same
    // budget bounds every surface lookup.
    EXPECT_TRUE(small.ladderSurface->verifyAgainst(small.ladder).ok());
}

TEST(LatencySurfaceMna, FastModelAgreesWithMnaOnGrid)
{
    CrossbarParams p;
    p.rows = 64;
    p.cols = 64;
    TimingModel small = TimingModel::generate(p, 4);
    SneakPathModel fast(p);
    CrossbarMna mna(p);
    CircuitEvaluator refEval = [&mna](const ResetCondition &c) {
        return mna.evaluate(c);
    };
    CircuitEvaluator candEval = [&fast](const ResetCondition &c) {
        return fast.evaluate(c);
    };
    ModelAgreement a =
        checkEvaluatorAgreement(p, small.law, refEval, candEval, 3, 3,
                                kMnaRelLatencyBudget);
    EXPECT_TRUE(a.ok()) << "violations " << a.violations << " of "
                        << a.points << ", max rel latency error "
                        << a.maxRelLatencyError << ", max drop delta "
                        << a.maxAbsDropDeltaVolts << " V";
    EXPECT_GT(a.points, 0u);
    // Drop-level agreement at the tolerance test_fastmodel spot-checks.
    EXPECT_LE(a.maxAbsDropDeltaVolts, 6e-3);
}

} // namespace
} // namespace ladder
