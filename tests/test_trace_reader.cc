/**
 * @file
 * Round-trip and robustness tests for the TraceReader library and the
 * streaming trace sink. The contract under test: every byte sequence
 * — valid traces in all three encodings, truncations, bit flips,
 * random garbage — is either parsed exactly or rejected with
 * ok() == false, never a crash or undefined behaviour (the CI
 * ASan/UBSan job runs this binary), and the streaming sink emits
 * byte-identical output to the buffered serializers while holding at
 * most O(chunk) records in memory.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "ctrl/trace_reader.hh"
#include "ctrl/trace_sink.hh"
#include "ctrl/trace_wire.hh"

namespace fs = std::filesystem;

namespace ladder
{
namespace
{

std::vector<CtrlTraceRecord>
randomRecords(std::size_t count, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<CtrlTraceRecord> records;
    records.reserve(count);
    std::uint64_t tick = 0;
    for (std::size_t i = 0; i < count; ++i) {
        CtrlTraceRecord r;
        tick += rng.nextBounded(10'000);
        r.tick = tick;
        r.kind = rng.nextBool(0.7) ? CtrlTraceRecord::Kind::Write
                                   : CtrlTraceRecord::Kind::Read;
        r.channel = static_cast<std::uint8_t>(rng.nextBounded(4));
        r.wordline = static_cast<std::uint16_t>(rng.nextBounded(512));
        r.bitline = static_cast<std::uint16_t>(rng.nextBounded(1024));
        r.lrsCount = static_cast<std::uint16_t>(rng.nextBounded(513));
        r.latencyNs =
            static_cast<float>(rng.nextBounded(400'000)) / 1000.0f;
        r.queueDepth =
            static_cast<std::uint32_t>(rng.nextBounded(64));
        records.push_back(r);
    }
    return records;
}

/**
 * Records with populated blame blocks, including negative components
 * to prove the signed two's-complement wire coding survives.
 */
std::vector<CtrlTraceRecord>
randomAttrRecords(std::size_t count, std::uint64_t seed)
{
    auto records = randomRecords(count, seed);
    Rng rng(seed ^ 0xA77A);
    for (auto &r : records) {
        if (r.kind != CtrlTraceRecord::Kind::Write)
            continue;
        std::int32_t *fields[] = {
            &r.attr.depTicks,     &r.attr.queueTicks,
            &r.attr.bankTicks,    &r.attr.rcdTicks,
            &r.attr.baseTicks,    &r.attr.locationTicks,
            &r.attr.contentTicks, &r.attr.schemeTicks};
        for (std::int32_t *f : fields)
            *f = static_cast<std::int32_t>(
                     rng.nextBounded(2'000'000)) -
                 1'000'000;
    }
    return records;
}

void
expectSameRecord(const CtrlTraceRecord &a, const CtrlTraceRecord &b,
                 std::size_t i)
{
    EXPECT_EQ(a.tick, b.tick) << "record " << i;
    EXPECT_EQ(a.kind, b.kind) << "record " << i;
    EXPECT_EQ(a.channel, b.channel) << "record " << i;
    EXPECT_EQ(a.wordline, b.wordline) << "record " << i;
    EXPECT_EQ(a.bitline, b.bitline) << "record " << i;
    EXPECT_EQ(a.lrsCount, b.lrsCount) << "record " << i;
    EXPECT_EQ(a.queueDepth, b.queueDepth) << "record " << i;
}

void
expectSameAttr(const WriteAttribution &a, const WriteAttribution &b,
               std::size_t i)
{
    EXPECT_EQ(a.depTicks, b.depTicks) << "record " << i;
    EXPECT_EQ(a.queueTicks, b.queueTicks) << "record " << i;
    EXPECT_EQ(a.bankTicks, b.bankTicks) << "record " << i;
    EXPECT_EQ(a.rcdTicks, b.rcdTicks) << "record " << i;
    EXPECT_EQ(a.baseTicks, b.baseTicks) << "record " << i;
    EXPECT_EQ(a.locationTicks, b.locationTicks) << "record " << i;
    EXPECT_EQ(a.contentTicks, b.contentTicks) << "record " << i;
    EXPECT_EQ(a.schemeTicks, b.schemeTicks) << "record " << i;
}

/** Drain @p reader and compare against @p expected exactly. */
void
expectReadsBack(TraceReader &reader,
                const std::vector<CtrlTraceRecord> &expected,
                bool exactLatency = true)
{
    CtrlTraceRecord rec;
    std::size_t i = 0;
    while (reader.next(rec)) {
        ASSERT_LT(i, expected.size());
        expectSameRecord(rec, expected[i], i);
        if (exactLatency) {
            EXPECT_EQ(rec.latencyNs, expected[i].latencyNs)
                << "record " << i;
        } else {
            // CSV prints latency with three decimals.
            EXPECT_NEAR(rec.latencyNs, expected[i].latencyNs, 0.0006)
                << "record " << i;
        }
        ++i;
    }
    EXPECT_TRUE(reader.ok()) << reader.error();
    EXPECT_EQ(i, expected.size());
    EXPECT_EQ(reader.recordsRead(), expected.size());
}

std::string
serializeV1(const std::vector<CtrlTraceRecord> &records)
{
    WriteTraceSink sink;
    for (const auto &r : records)
        sink.record(r);
    std::ostringstream os;
    sink.writeBinary(os);
    return os.str();
}

std::string
serializeV3(const std::vector<CtrlTraceRecord> &records,
            std::size_t chunkRecords)
{
    WriteTraceSink sink;
    sink.setAttribution(true);
    for (const auto &r : records)
        sink.record(r);
    std::ostringstream os;
    sink.writeBinaryV2(os, chunkRecords);
    return os.str();
}

std::string
serializeCsvAttr(const std::vector<CtrlTraceRecord> &records)
{
    WriteTraceSink sink;
    sink.setAttribution(true);
    for (const auto &r : records)
        sink.record(r);
    std::ostringstream os;
    sink.writeCsv(os);
    return os.str();
}

std::string
serializeV2(const std::vector<CtrlTraceRecord> &records,
            std::size_t chunkRecords)
{
    WriteTraceSink sink;
    for (const auto &r : records)
        sink.record(r);
    std::ostringstream os;
    sink.writeBinaryV2(os, chunkRecords);
    return os.str();
}

std::string
serializeCsv(const std::vector<CtrlTraceRecord> &records)
{
    WriteTraceSink sink;
    for (const auto &r : records)
        sink.record(r);
    std::ostringstream os;
    sink.writeCsv(os);
    return os.str();
}

TEST(TraceReader, V1RoundTrip)
{
    auto records = randomRecords(257, 0xA1);
    TraceReader reader;
    ASSERT_TRUE(reader.openBuffer(serializeV1(records)))
        << reader.error();
    EXPECT_EQ(reader.format(), TraceFormat::BinaryV1);
    EXPECT_EQ(reader.version(), 1u);
    EXPECT_TRUE(reader.knownTotal());
    EXPECT_EQ(reader.totalRecords(), records.size());
    EXPECT_EQ(reader.chunkCount(), 0u);
    expectReadsBack(reader, records);
}

TEST(TraceReader, V2RoundTripAcrossChunkGeometries)
{
    // Partial tail, exact multiple, single oversize chunk, chunk=1.
    const struct
    {
        std::size_t count, chunk;
    } cases[] = {{257, 64}, {256, 64}, {5, 1000}, {7, 1}, {64, 64}};
    for (const auto &c : cases) {
        auto records = randomRecords(c.count, 0xB000 + c.count);
        TraceReader reader;
        ASSERT_TRUE(
            reader.openBuffer(serializeV2(records, c.chunk)))
            << reader.error() << " count=" << c.count;
        EXPECT_EQ(reader.format(), TraceFormat::BinaryV2);
        EXPECT_EQ(reader.version(), 2u);
        EXPECT_EQ(reader.totalRecords(), c.count);
        EXPECT_EQ(reader.chunkCount(),
                  (c.count + c.chunk - 1) / c.chunk);
        expectReadsBack(reader, records);
    }
}

TEST(TraceReader, CsvRoundTrip)
{
    auto records = randomRecords(97, 0xC5);
    TraceReader reader;
    ASSERT_TRUE(reader.openBuffer(serializeCsv(records)))
        << reader.error();
    EXPECT_EQ(reader.format(), TraceFormat::Csv);
    EXPECT_EQ(reader.version(), 0u);
    EXPECT_FALSE(reader.knownTotal());
    expectReadsBack(reader, records, /*exactLatency=*/false);
}

TEST(TraceReader, EmptyTracesRoundTrip)
{
    const std::vector<CtrlTraceRecord> none;
    for (const std::string &bytes :
         {serializeV1(none), serializeV2(none, 64),
          serializeCsv(none)}) {
        TraceReader reader;
        ASSERT_TRUE(reader.openBuffer(bytes)) << reader.error();
        CtrlTraceRecord rec;
        EXPECT_FALSE(reader.next(rec));
        EXPECT_TRUE(reader.ok()) << reader.error();
        EXPECT_EQ(reader.recordsRead(), 0u);
    }
}

TEST(TraceReader, V2ChunkIndexAndSeek)
{
    const std::size_t chunk = 16;
    auto records = randomRecords(100, 0xD7);
    std::string bytes = serializeV2(records, chunk);
    TraceReader reader;
    ASSERT_TRUE(reader.openBuffer(bytes)) << reader.error();
    ASSERT_EQ(reader.chunkCount(), 7u);
    for (std::size_t i = 0; i < reader.chunkCount(); ++i) {
        EXPECT_EQ(reader.chunkFirstRecord(i), i * chunk);
        EXPECT_EQ(reader.chunkRecords(i),
                  i + 1 < reader.chunkCount() ? chunk : 100u % chunk);
    }

    // Seek to the middle, read to the end.
    ASSERT_TRUE(reader.seekChunk(4)) << reader.error();
    CtrlTraceRecord rec;
    std::size_t i = 4 * chunk;
    while (reader.next(rec)) {
        ASSERT_LT(i, records.size());
        expectSameRecord(rec, records[i], i);
        ++i;
    }
    EXPECT_TRUE(reader.ok()) << reader.error();
    EXPECT_EQ(i, records.size());

    // Seek backwards works too; out-of-range seeks error.
    ASSERT_TRUE(reader.seekChunk(0)) << reader.error();
    ASSERT_TRUE(reader.next(rec));
    expectSameRecord(rec, records[0], 0);
    EXPECT_FALSE(reader.seekChunk(7));
    EXPECT_FALSE(reader.ok());
}

TEST(TraceReader, EveryTruncationIsAnErrorNotACrash)
{
    auto records = randomRecords(20, 0xE1);
    for (const std::string &whole :
         {serializeV1(records), serializeV2(records, 8)}) {
        for (std::size_t len = 0; len < whole.size(); ++len) {
            TraceReader reader;
            reader.openBuffer(whole.substr(0, len));
            // Drain anyway — truncation must never turn into an
            // endless or crashing iteration either.
            CtrlTraceRecord rec;
            while (reader.next(rec)) {
            }
            EXPECT_FALSE(reader.ok())
                << "truncation to " << len << " of " << whole.size()
                << " bytes was not reported as an error";
        }
    }
}

TEST(TraceReader, CsvTruncationAndMalformedRowsError)
{
    auto records = randomRecords(5, 0xE2);
    std::string whole = serializeCsv(records);
    // Truncating mid-row (not at a line boundary) must error.
    std::size_t lastNewline = whole.find_last_of('\n', whole.size() - 2);
    TraceReader reader;
    reader.openBuffer(whole.substr(0, lastNewline + 5));
    CtrlTraceRecord rec;
    while (reader.next(rec)) {
    }
    EXPECT_FALSE(reader.ok());

    const char *bad[] = {
        // Wrong header.
        "type,tick\nW,1,0,0,0,0,1.0,0\n",
        // Bad kind letter.
        "type,tick,channel,wordline,bitline,lrs_count,latency_ns,"
        "queue_depth\nX,1,0,0,0,0,1.0,0\n",
        // Missing fields.
        "type,tick,channel,wordline,bitline,lrs_count,latency_ns,"
        "queue_depth\nW,1,0,0\n",
        // Out-of-range channel.
        "type,tick,channel,wordline,bitline,lrs_count,latency_ns,"
        "queue_depth\nW,1,4000,0,0,0,1.0,0\n",
        // Trailing garbage on the row.
        "type,tick,channel,wordline,bitline,lrs_count,latency_ns,"
        "queue_depth\nW,1,0,0,0,0,1.0,0,junk\n",
    };
    for (const char *text : bad) {
        TraceReader r;
        r.openBuffer(text);
        while (r.next(rec)) {
        }
        EXPECT_FALSE(r.ok()) << "accepted malformed CSV: " << text;
    }
}

TEST(TraceReader, BadMagicAndVersionError)
{
    auto records = randomRecords(4, 0xE3);
    std::string v1 = serializeV1(records);
    std::string v2 = serializeV2(records, 8);

    std::string badMagic = v2;
    badMagic[3] ^= 0x40;
    TraceReader reader;
    EXPECT_FALSE(reader.openBuffer(badMagic));
    EXPECT_FALSE(reader.ok());

    std::string badVersion = v2;
    badVersion[8] = 99; // version 99 does not exist (3 = attribution)
    TraceReader r2;
    EXPECT_FALSE(r2.openBuffer(badVersion));
    EXPECT_NE(r2.error().find("version"), std::string::npos)
        << r2.error();

    // v1 with trailing garbage is rejected by the exact-size check.
    TraceReader r3;
    r3.openBuffer(v1 + "x");
    CtrlTraceRecord rec;
    while (r3.next(rec)) {
    }
    EXPECT_FALSE(r3.ok());
}

TEST(TraceReader, EveryV2ByteFlipIsDetectedOrHarmless)
{
    auto records = randomRecords(20, 0xE4);
    std::string whole = serializeV2(records, 8);
    for (std::size_t pos = 0; pos < whole.size(); ++pos) {
        std::string flipped = whole;
        flipped[pos] ^= 0x01;
        TraceReader reader;
        bool opened = reader.openBuffer(std::move(flipped));
        std::vector<CtrlTraceRecord> got;
        CtrlTraceRecord rec;
        while (reader.next(rec))
            got.push_back(rec);
        if (pos >= 16) {
            // Everything after the file header is covered by a chunk
            // CRC, the footer CRC, or cross-validation against the
            // index, so a flip there must be *detected*.
            EXPECT_FALSE(reader.ok())
                << "flip at offset " << pos << " went undetected";
        } else if (opened && reader.ok()) {
            // Header flips may be tolerated (e.g. the chunk-capacity
            // field when the index stays consistent) but then the
            // decoded records must be untouched.
            ASSERT_EQ(got.size(), records.size())
                << "flip at offset " << pos;
            for (std::size_t i = 0; i < got.size(); ++i)
                expectSameRecord(got[i], records[i], i);
        }
    }
}

TEST(TraceReader, RandomGarbageNeverCrashes)
{
    Rng rng(0xF00D);
    for (int round = 0; round < 200; ++round) {
        std::size_t len = rng.nextBounded(512);
        std::string bytes(len, '\0');
        for (auto &b : bytes)
            b = static_cast<char>(rng.nextBounded(256));
        TraceReader reader;
        reader.openBuffer(std::move(bytes));
        CtrlTraceRecord rec;
        // Bounded by construction: next() returns false on error.
        while (reader.next(rec)) {
        }
        SUCCEED();
    }
}

TEST(TraceStream, BoundedMemoryByteIdenticalToBuffered)
{
    const std::size_t chunk = 64;
    const std::size_t count = chunk * 12 + 5; // >= 10 chunks
    auto records = randomRecords(count, 0x51);

    fs::path dir = fs::path(::testing::TempDir()) / "ladder_stream";
    fs::create_directories(dir);
    fs::path binPath = dir / "stream.bin";
    fs::path csvPath = dir / "stream.csv";

    TraceStreamOptions options;
    options.chunkRecords = chunk;
    {
        WriteTraceSink sink(binPath.string(), TraceFormat::BinaryV2,
                            options);
        ASSERT_TRUE(sink.streaming());
        for (const auto &r : records)
            sink.record(r);
        sink.finish();
        EXPECT_EQ(sink.size(), count);
        // The bounded-memory guarantee: the fill chunk plus queued
        // plus in-flight chunks, never the whole trace.
        EXPECT_LE(sink.peakBufferedRecords(),
                  chunk * (options.maxQueuedChunks + 2));
    }
    {
        WriteTraceSink sink(csvPath.string(), TraceFormat::Csv,
                            options);
        for (const auto &r : records)
            sink.record(r);
        sink.finish();
        EXPECT_LE(sink.peakBufferedRecords(),
                  chunk * (options.maxQueuedChunks + 2));
    }

    auto slurp = [](const fs::path &p) {
        std::ifstream is(p, std::ios::binary);
        std::ostringstream os;
        os << is.rdbuf();
        return os.str();
    };
    EXPECT_EQ(slurp(binPath), serializeV2(records, chunk))
        << "streamed v2 bytes differ from buffered serialization";
    EXPECT_EQ(slurp(csvPath), serializeCsv(records))
        << "streamed CSV bytes differ from buffered serialization";

    // And the streamed file reads back exactly.
    TraceReader reader;
    ASSERT_TRUE(reader.open(binPath.string())) << reader.error();
    EXPECT_GE(reader.chunkCount(), 10u);
    expectReadsBack(reader, records);

    fs::remove_all(dir);
}

TEST(TraceStream, ClearRestartsTheOutputFile)
{
    auto ramp = randomRecords(100, 0x52);
    auto measured = randomRecords(37, 0x53);

    fs::path dir = fs::path(::testing::TempDir()) / "ladder_clear";
    fs::create_directories(dir);
    fs::path path = dir / "trace.bin";

    TraceStreamOptions options;
    options.chunkRecords = 16;
    {
        WriteTraceSink sink(path.string(), TraceFormat::BinaryV2,
                            options);
        for (const auto &r : ramp)
            sink.record(r);
        // System::run drops ramp records at the measured-window
        // boundary; the streamed file must restart too.
        sink.clear();
        EXPECT_EQ(sink.size(), 0u);
        for (const auto &r : measured)
            sink.record(r);
        sink.finish();
        EXPECT_EQ(sink.size(), measured.size());
    }
    std::ifstream is(path, std::ios::binary);
    std::ostringstream os;
    os << is.rdbuf();
    EXPECT_EQ(os.str(), serializeV2(measured, 16));

    fs::remove_all(dir);
}

TEST(TraceSummary, AggregatesMatchHandComputation)
{
    auto records = randomRecords(500, 0x54);
    TraceReader reader;
    ASSERT_TRUE(reader.openBuffer(serializeV2(records, 64)))
        << reader.error();
    TraceSummary s = summarizeTrace(reader);
    ASSERT_TRUE(reader.ok()) << reader.error();

    std::uint64_t writes = 0;
    float maxWrite = 0.0f;
    std::uint32_t maxQueue = 0;
    for (const auto &r : records) {
        if (r.kind == CtrlTraceRecord::Kind::Write) {
            ++writes;
            maxWrite = std::max(maxWrite, r.latencyNs);
        }
        maxQueue = std::max(maxQueue, r.queueDepth);
    }
    EXPECT_EQ(s.records, records.size());
    EXPECT_EQ(s.writes, writes);
    EXPECT_EQ(s.reads, records.size() - writes);
    EXPECT_EQ(s.firstTick, records.front().tick);
    EXPECT_EQ(s.lastTick, records.back().tick);
    EXPECT_EQ(s.maxWriteLatencyNs, maxWrite);
    EXPECT_EQ(s.maxQueueDepth, maxQueue);
}

/** 32 records, ticks 0,100,...,3100, in 4 chunks of 8. */
std::vector<CtrlTraceRecord>
windowRecords()
{
    std::vector<CtrlTraceRecord> records;
    for (std::size_t i = 0; i < 32; ++i) {
        CtrlTraceRecord r;
        r.tick = i * 100;
        r.kind = i % 2 == 0 ? CtrlTraceRecord::Kind::Write
                            : CtrlTraceRecord::Kind::Read;
        r.channel = static_cast<std::uint8_t>(i % 4);
        r.lrsCount = static_cast<std::uint16_t>(i);
        r.latencyNs = 10.0f;
        records.push_back(r);
    }
    return records;
}

TEST(TraceWindow, SkipsChunksOutsideTheTickWindow)
{
    auto records = windowRecords();
    const std::string bytes = serializeV2(records, 8);

    // Window covering exactly chunk 1 (ticks 800..1500).
    TraceReader reader;
    ASSERT_TRUE(reader.openBuffer(bytes)) << reader.error();
    reader.setTickWindow(800, 1500);
    CtrlTraceRecord rec;
    std::size_t i = 8;
    while (reader.next(rec))
        expectSameRecord(rec, records[i++], i);
    EXPECT_TRUE(reader.ok()) << reader.error();
    EXPECT_EQ(i, 16u);
    // Only the one overlapping chunk was ever CRC-checked/decoded.
    EXPECT_EQ(reader.chunksDecoded(), 1u);
    EXPECT_EQ(reader.recordsRead(), 8u);

    // A boundary window delivers the *whole* overlapping chunks:
    // [750, 850] only intersects chunk 1's range, and the caller is
    // responsible for per-record trimming.
    ASSERT_TRUE(reader.openBuffer(bytes)) << reader.error();
    reader.setTickWindow(750, 850);
    std::size_t delivered = 0;
    while (reader.next(rec))
        ++delivered;
    EXPECT_TRUE(reader.ok()) << reader.error();
    EXPECT_EQ(delivered, 8u);
    EXPECT_EQ(reader.chunksDecoded(), 1u);

    // An empty window decodes nothing.
    ASSERT_TRUE(reader.openBuffer(bytes)) << reader.error();
    reader.setTickWindow(10'000, 20'000);
    EXPECT_FALSE(reader.next(rec));
    EXPECT_TRUE(reader.ok()) << reader.error();
    EXPECT_EQ(reader.chunksDecoded(), 0u);

    // No window (or re-open) scans everything.
    ASSERT_TRUE(reader.openBuffer(bytes)) << reader.error();
    delivered = 0;
    while (reader.next(rec))
        ++delivered;
    EXPECT_EQ(delivered, 32u);
    EXPECT_EQ(reader.chunksDecoded(), 4u);
}

TEST(TraceAttr, V3AndCsvRoundTripTheBlameBlock)
{
    auto records = randomAttrRecords(131, 0xAA01);
    {
        TraceReader reader;
        ASSERT_TRUE(reader.openBuffer(serializeV3(records, 16)))
            << reader.error();
        EXPECT_EQ(reader.format(), TraceFormat::BinaryV2);
        EXPECT_EQ(reader.version(), traceAttrVersion);
        EXPECT_TRUE(reader.attribution());
        CtrlTraceRecord rec;
        std::size_t i = 0;
        while (reader.next(rec)) {
            ASSERT_LT(i, records.size());
            expectSameRecord(rec, records[i], i);
            EXPECT_EQ(rec.latencyNs, records[i].latencyNs);
            expectSameAttr(rec.attr, records[i].attr, i);
            ++i;
        }
        EXPECT_TRUE(reader.ok()) << reader.error();
        EXPECT_EQ(i, records.size());
    }
    {
        TraceReader reader;
        ASSERT_TRUE(reader.openBuffer(serializeCsvAttr(records)))
            << reader.error();
        EXPECT_EQ(reader.format(), TraceFormat::Csv);
        EXPECT_TRUE(reader.attribution());
        CtrlTraceRecord rec;
        std::size_t i = 0;
        while (reader.next(rec)) {
            ASSERT_LT(i, records.size());
            expectSameRecord(rec, records[i], i);
            expectSameAttr(rec.attr, records[i].attr, i);
            ++i;
        }
        EXPECT_TRUE(reader.ok()) << reader.error();
        EXPECT_EQ(i, records.size());
    }
    // Base-format reads of the same records leave attr all zero.
    TraceReader base;
    ASSERT_TRUE(base.openBuffer(serializeV2(records, 16)))
        << base.error();
    EXPECT_FALSE(base.attribution());
    CtrlTraceRecord rec;
    while (base.next(rec))
        expectSameAttr(rec.attr, WriteAttribution{}, 0);
}

TEST(TraceAttr, OffSerializationIgnoresPopulatedBlameBlocks)
{
    // The byte-differential guarantee: attribution-off output of
    // records whose in-memory attr fields are populated is identical
    // to the output of the same records with attr zeroed — the off
    // path never reads the blame block at all.
    auto records = randomAttrRecords(64, 0xAA02);
    auto zeroed = records;
    for (auto &r : zeroed)
        r.attr = WriteAttribution{};
    EXPECT_EQ(serializeV2(records, 8), serializeV2(zeroed, 8));
    EXPECT_EQ(serializeCsv(records), serializeCsv(zeroed));
    EXPECT_EQ(serializeV1(records), serializeV1(zeroed));
}

TEST(TraceAttr, CsvAttributionAddsExactlyTheBlameColumns)
{
    auto records = randomAttrRecords(48, 0xAA03);
    std::istringstream attr(serializeCsvAttr(records));
    std::istringstream plain(serializeCsv(records));
    std::string attrLine, plainLine;
    std::size_t line = 0;
    while (std::getline(plain, plainLine)) {
        ASSERT_TRUE(std::getline(attr, attrLine)) << "line " << line;
        // Each attr row is the base row plus 8 comma fields.
        ASSERT_GT(attrLine.size(), plainLine.size()) << attrLine;
        if (line == 0) {
            EXPECT_EQ(attrLine, std::string(traceCsvHeaderAttr)
                                    .substr(0, attrLine.size()));
        } else {
            EXPECT_EQ(attrLine.substr(0, plainLine.size()),
                      plainLine)
                << "line " << line;
            EXPECT_EQ(attrLine[plainLine.size()], ',');
            std::size_t commas = 0;
            for (std::size_t p = plainLine.size();
                 p < attrLine.size(); ++p)
                commas += attrLine[p] == ',' ? 1 : 0;
            EXPECT_EQ(commas, 8u) << attrLine;
        }
        ++line;
    }
    EXPECT_FALSE(std::getline(attr, attrLine));
}

TEST(TraceAttr, V3TruncationWallErrorsNeverCrash)
{
    auto records = randomAttrRecords(20, 0xAA04);
    const std::string whole = serializeV3(records, 8);
    for (std::size_t len = 0; len < whole.size(); ++len) {
        TraceReader reader;
        reader.openBuffer(whole.substr(0, len));
        CtrlTraceRecord rec;
        while (reader.next(rec)) {
        }
        EXPECT_FALSE(reader.ok())
            << "v3 truncation to " << len << " of " << whole.size()
            << " bytes was not reported as an error";
    }
}

TEST(TraceAttr, EveryV3ByteFlipIsDetectedOrHarmless)
{
    auto records = randomAttrRecords(20, 0xAA05);
    const std::string whole = serializeV3(records, 8);
    for (std::size_t pos = 0; pos < whole.size(); ++pos) {
        std::string flipped = whole;
        flipped[pos] ^= 0x01;
        TraceReader reader;
        bool opened = reader.openBuffer(std::move(flipped));
        std::vector<CtrlTraceRecord> got;
        CtrlTraceRecord rec;
        while (reader.next(rec))
            got.push_back(rec);
        if (pos >= 16) {
            // The blame block rides inside the chunk payloads, so the
            // same CRC/index wall covers it byte for byte.
            EXPECT_FALSE(reader.ok())
                << "v3 flip at offset " << pos << " went undetected";
        } else if (opened && reader.ok()) {
            ASSERT_EQ(got.size(), records.size())
                << "flip at offset " << pos;
            for (std::size_t i = 0; i < got.size(); ++i) {
                expectSameRecord(got[i], records[i], i);
                expectSameAttr(got[i].attr, records[i].attr, i);
            }
        }
    }
}

TEST(TraceAttr, StreamingV3MatchesBufferedBytes)
{
    const std::size_t chunk = 32;
    auto records = randomAttrRecords(chunk * 5 + 3, 0xAA06);
    fs::path dir = fs::path(::testing::TempDir()) / "ladder_attr";
    fs::create_directories(dir);
    TraceStreamOptions options;
    options.chunkRecords = chunk;
    auto slurp = [](const fs::path &p) {
        std::ifstream is(p, std::ios::binary);
        std::ostringstream os;
        os << is.rdbuf();
        return os.str();
    };
    {
        fs::path path = dir / "attr.bin";
        WriteTraceSink sink(path.string(), TraceFormat::BinaryV2,
                            options, /*attribution=*/true);
        EXPECT_TRUE(sink.attribution());
        for (const auto &r : records)
            sink.record(r);
        sink.finish();
        EXPECT_EQ(slurp(path), serializeV3(records, chunk))
            << "streamed v3 bytes differ from buffered";
    }
    {
        fs::path path = dir / "attr.csv";
        WriteTraceSink sink(path.string(), TraceFormat::Csv, options,
                            /*attribution=*/true);
        for (const auto &r : records)
            sink.record(r);
        sink.finish();
        EXPECT_EQ(slurp(path), serializeCsvAttr(records))
            << "streamed attr CSV bytes differ from buffered";
    }
    fs::remove_all(dir);
}

TEST(TraceWindow, SkippedChunksAreNeverCrcCheckedOrDecoded)
{
    auto records = windowRecords();
    std::string bytes = serializeV2(records, 8);

    // Corrupt a *payload* byte of chunk 2 — the lrsCount field of
    // its fourth record, well away from the peeked tick bytes — so
    // any CRC check or decode of that chunk must fail.
    const std::size_t chunkBytes =
        traceChunkHeaderBytes + 8 * traceRecordBytes;
    const std::size_t corruptAt = traceFileHeaderBytes +
                                  2 * chunkBytes +
                                  traceChunkHeaderBytes +
                                  3 * traceRecordBytes + 14;
    bytes[corruptAt] = static_cast<char>(bytes[corruptAt] ^ 0x5A);

    // A full scan trips over the corruption...
    TraceReader reader;
    ASSERT_TRUE(reader.openBuffer(bytes)) << reader.error();
    CtrlTraceRecord rec;
    while (reader.next(rec)) {
    }
    EXPECT_FALSE(reader.ok());
    EXPECT_NE(reader.error().find("CRC"), std::string::npos)
        << reader.error();

    // ...but a windowed scan that excludes chunk 2 never touches it:
    // the corrupt chunk is skipped from the 16-byte tick peek alone.
    ASSERT_TRUE(reader.openBuffer(bytes)) << reader.error();
    reader.setTickWindow(0, 1500); // chunks 0 and 1 only
    std::size_t i = 0;
    while (reader.next(rec))
        expectSameRecord(rec, records[i++], i);
    EXPECT_TRUE(reader.ok()) << reader.error();
    EXPECT_EQ(i, 16u);
    EXPECT_EQ(reader.chunksDecoded(), 2u);
}

} // namespace
} // namespace ladder
