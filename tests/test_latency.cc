/** @file Tests for the RESET latency law. */

#include <gtest/gtest.h>

#include "circuit/latency.hh"

namespace ladder
{
namespace
{

TEST(LatencyLaw, CalibrationEndpoints)
{
    auto law = ResetLatencyLaw::calibrate(2.8, 2.2, 29.0, 658.0);
    EXPECT_NEAR(law.latencyNs(2.8), 29.0, 1e-6);
    EXPECT_NEAR(law.latencyNs(2.2), 658.0, 1e-6);
}

TEST(LatencyLaw, MonotoneDecreasingInDrop)
{
    auto law = ResetLatencyLaw::calibrate(2.8, 2.2);
    double prev = 1e9;
    for (double v = 2.0; v <= 3.0; v += 0.05) {
        double t = law.latencyNs(v);
        EXPECT_LE(t, prev);
        prev = t;
    }
}

TEST(LatencyLaw, ClampsOutsideEnvelope)
{
    auto law = ResetLatencyLaw::calibrate(2.8, 2.2, 29.0, 658.0);
    EXPECT_DOUBLE_EQ(law.latencyNs(3.5), 29.0);
    EXPECT_DOUBLE_EQ(law.latencyNs(0.5), 658.0);
}

TEST(LatencyLaw, ExponentialShape)
{
    auto law = ResetLatencyLaw::calibrate(2.8, 2.2, 29.0, 658.0);
    // Equal voltage steps multiply latency by a constant factor.
    double r1 = law.latencyNs(2.4) / law.latencyNs(2.5);
    double r2 = law.latencyNs(2.5) / law.latencyNs(2.6);
    EXPECT_NEAR(r1, r2, 1e-9);
    EXPECT_GT(r1, 1.0);
}

TEST(LatencyLaw, PaperSensitivity)
{
    // The paper quotes ~10x slowdown for a 0.4V reduction in drop;
    // our calibrated k should be in that regime (k ~ ln(10)/0.4).
    auto law = ResetLatencyLaw::calibrate(2.835, 2.174, 29.0, 658.0);
    EXPECT_GT(law.kPerVolt, 3.0);
    EXPECT_LT(law.kPerVolt, 8.0);
}

TEST(LatencyLaw, ShrinkDynamicRange)
{
    auto law = ResetLatencyLaw::calibrate(2.8, 2.2, 29.0, 658.0);
    auto shrunk = law.shrinkDynamicRange(2.0);
    // Anchored at the slow end: the worst-case spec is unchanged and
    // the best case degrades toward it.
    EXPECT_DOUBLE_EQ(shrunk.slowNs, 658.0);
    EXPECT_NEAR(shrunk.fastNs, 658.0 - (658.0 - 29.0) / 2.0, 1e-9);
    EXPECT_NEAR(shrunk.latencyNs(2.8), shrunk.fastNs, 1e-6);
    EXPECT_NEAR(shrunk.latencyNs(2.2), 658.0, 1e-6);
    // Every operating point is slower than under the nominal law.
    EXPECT_GT(shrunk.latencyNs(2.5), law.latencyNs(2.5));
}

TEST(LatencyLaw, ShrinkFactorOneIsIdentityShape)
{
    auto law = ResetLatencyLaw::calibrate(2.8, 2.2, 29.0, 658.0);
    auto same = law.shrinkDynamicRange(1.0);
    EXPECT_NEAR(same.latencyNs(2.5), law.latencyNs(2.5), 1e-6);
}

TEST(LatencyLaw, BadCalibrationIsRejected)
{
    EXPECT_THROW(ResetLatencyLaw::calibrate(2.2, 2.8),
                 std::logic_error);
    EXPECT_THROW(ResetLatencyLaw::calibrate(2.8, 2.2, 100.0, 50.0),
                 std::logic_error);
}

} // namespace
} // namespace ladder
