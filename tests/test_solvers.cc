/** @file Tests for the linear solvers (CG, dense, tridiagonal). */

#include <gtest/gtest.h>

#include "circuit/solvers.hh"
#include "common/rng.hh"

namespace ladder
{
namespace
{

/** Random SPD matrix as A = B^T B + n*I, returned as triplets. */
std::vector<Triplet>
randomSpd(std::size_t n, Rng &rng)
{
    std::vector<double> b(n * n);
    for (auto &v : b)
        v = rng.nextDouble() - 0.5;
    std::vector<Triplet> trip;
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            double acc = 0.0;
            for (std::size_t k = 0; k < n; ++k)
                acc += b[k * n + i] * b[k * n + j];
            if (i == j)
                acc += static_cast<double>(n);
            trip.push_back({i, j, acc});
        }
    }
    return trip;
}

class CgVsDense : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(CgVsDense, Agree)
{
    std::size_t n = GetParam();
    Rng rng(37 + n);
    SparseMatrix a(n, randomSpd(n, rng));
    std::vector<double> rhs(n);
    for (auto &v : rhs)
        v = rng.nextDouble() * 2.0 - 1.0;

    std::vector<double> x;
    CgResult result = conjugateGradient(a, rhs, x, 1e-12);
    EXPECT_TRUE(result.converged);

    std::vector<double> dense = a.toDense();
    std::vector<double> ref = rhs;
    denseSolveInPlace(dense, ref, n);
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_NEAR(x[i], ref[i], 1e-7) << "component " << i;
}

INSTANTIATE_TEST_SUITE_P(Sizes, CgVsDense,
                         ::testing::Values(1, 2, 5, 10, 25, 60));

TEST(Cg, WarmStartConverges)
{
    Rng rng(5);
    const std::size_t n = 20;
    SparseMatrix a(n, randomSpd(n, rng));
    std::vector<double> rhs(n, 1.0);
    std::vector<double> x;
    conjugateGradient(a, rhs, x, 1e-12);
    // Warm start from the solution converges immediately.
    std::vector<double> x2 = x;
    CgResult again = conjugateGradient(a, rhs, x2, 1e-10);
    EXPECT_TRUE(again.converged);
    EXPECT_LE(again.iterations, 1u);
}

TEST(Cg, ZeroRhsGivesZero)
{
    Rng rng(6);
    const std::size_t n = 8;
    SparseMatrix a(n, randomSpd(n, rng));
    std::vector<double> rhs(n, 0.0);
    std::vector<double> x(n, 3.0);
    CgResult result = conjugateGradient(a, rhs, x, 1e-12);
    EXPECT_TRUE(result.converged);
    for (double v : x)
        EXPECT_NEAR(v, 0.0, 1e-8);
}

TEST(DenseSolve, PivotingHandlesZeroDiagonal)
{
    // [[0 1],[1 0]] x = [2, 3] -> x = [3, 2]
    std::vector<double> a = {0, 1, 1, 0};
    std::vector<double> b = {2, 3};
    denseSolveInPlace(a, b, 2);
    EXPECT_NEAR(b[0], 3.0, 1e-12);
    EXPECT_NEAR(b[1], 2.0, 1e-12);
}

TEST(Tridiagonal, MatchesDense)
{
    Rng rng(7);
    const std::size_t n = 30;
    std::vector<double> sub(n), diag(n), sup(n), rhs(n);
    for (std::size_t i = 0; i < n; ++i) {
        sub[i] = i ? -(0.5 + rng.nextDouble()) : 0.0;
        sup[i] = i + 1 < n ? -(0.5 + rng.nextDouble()) : 0.0;
        diag[i] = 4.0 + rng.nextDouble();
        rhs[i] = rng.nextDouble() * 2.0 - 1.0;
    }
    // Dense reference.
    std::vector<double> dense(n * n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        dense[i * n + i] = diag[i];
        if (i)
            dense[i * n + i - 1] = sub[i];
        if (i + 1 < n)
            dense[i * n + i + 1] = sup[i];
    }
    std::vector<double> ref = rhs;
    denseSolveInPlace(dense, ref, n);

    std::vector<double> x = rhs;
    solveTridiagonal(sub, diag, sup, x);
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_NEAR(x[i], ref[i], 1e-9);
}

TEST(Tridiagonal, SingleElement)
{
    std::vector<double> sub{0.0}, diag{2.0}, sup{0.0}, rhs{6.0};
    solveTridiagonal(sub, diag, sup, rhs);
    EXPECT_DOUBLE_EQ(rhs[0], 3.0);
}

} // namespace
} // namespace ladder
