/** @file Tests for the linear solvers (CG, dense, tridiagonal). */

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/solvers.hh"
#include "common/rng.hh"

namespace ladder
{
namespace
{

/** Random SPD matrix as A = B^T B + n*I, returned as triplets. */
std::vector<Triplet>
randomSpd(std::size_t n, Rng &rng)
{
    std::vector<double> b(n * n);
    for (auto &v : b)
        v = rng.nextDouble() - 0.5;
    std::vector<Triplet> trip;
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            double acc = 0.0;
            for (std::size_t k = 0; k < n; ++k)
                acc += b[k * n + i] * b[k * n + j];
            if (i == j)
                acc += static_cast<double>(n);
            trip.push_back({i, j, acc});
        }
    }
    return trip;
}

class CgVsDense : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(CgVsDense, Agree)
{
    std::size_t n = GetParam();
    Rng rng(37 + n);
    SparseMatrix a(n, randomSpd(n, rng));
    std::vector<double> rhs(n);
    for (auto &v : rhs)
        v = rng.nextDouble() * 2.0 - 1.0;

    std::vector<double> x;
    CgResult result = conjugateGradient(a, rhs, x, 1e-12);
    EXPECT_TRUE(result.converged);

    std::vector<double> dense = a.toDense();
    std::vector<double> ref = rhs;
    denseSolveInPlace(dense, ref, n);
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_NEAR(x[i], ref[i], 1e-7) << "component " << i;
}

INSTANTIATE_TEST_SUITE_P(Sizes, CgVsDense,
                         ::testing::Values(1, 2, 5, 10, 25, 60));

TEST(Cg, WarmStartConverges)
{
    Rng rng(5);
    const std::size_t n = 20;
    SparseMatrix a(n, randomSpd(n, rng));
    std::vector<double> rhs(n, 1.0);
    std::vector<double> x;
    conjugateGradient(a, rhs, x, 1e-12);
    // Warm start from the solution converges immediately.
    std::vector<double> x2 = x;
    CgResult again = conjugateGradient(a, rhs, x2, 1e-10);
    EXPECT_TRUE(again.converged);
    EXPECT_LE(again.iterations, 1u);
}

TEST(Cg, ZeroRhsGivesZero)
{
    Rng rng(6);
    const std::size_t n = 8;
    SparseMatrix a(n, randomSpd(n, rng));
    std::vector<double> rhs(n, 0.0);
    std::vector<double> x(n, 3.0);
    CgResult result = conjugateGradient(a, rhs, x, 1e-12);
    EXPECT_TRUE(result.converged);
    for (double v : x)
        EXPECT_NEAR(v, 0.0, 1e-8);
}

TEST(DenseSolve, PivotingHandlesZeroDiagonal)
{
    // [[0 1],[1 0]] x = [2, 3] -> x = [3, 2]
    std::vector<double> a = {0, 1, 1, 0};
    std::vector<double> b = {2, 3};
    denseSolveInPlace(a, b, 2);
    EXPECT_NEAR(b[0], 3.0, 1e-12);
    EXPECT_NEAR(b[1], 2.0, 1e-12);
}

TEST(Tridiagonal, MatchesDense)
{
    Rng rng(7);
    const std::size_t n = 30;
    std::vector<double> sub(n), diag(n), sup(n), rhs(n);
    for (std::size_t i = 0; i < n; ++i) {
        sub[i] = i ? -(0.5 + rng.nextDouble()) : 0.0;
        sup[i] = i + 1 < n ? -(0.5 + rng.nextDouble()) : 0.0;
        diag[i] = 4.0 + rng.nextDouble();
        rhs[i] = rng.nextDouble() * 2.0 - 1.0;
    }
    // Dense reference.
    std::vector<double> dense(n * n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        dense[i * n + i] = diag[i];
        if (i)
            dense[i * n + i - 1] = sub[i];
        if (i + 1 < n)
            dense[i * n + i + 1] = sup[i];
    }
    std::vector<double> ref = rhs;
    denseSolveInPlace(dense, ref, n);

    std::vector<double> x = rhs;
    solveTridiagonal(sub, diag, sup, x);
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_NEAR(x[i], ref[i], 1e-9);
}

TEST(Tridiagonal, SingleElement)
{
    std::vector<double> sub{0.0}, diag{2.0}, sup{0.0}, rhs{6.0};
    solveTridiagonal(sub, diag, sup, rhs);
    EXPECT_DOUBLE_EQ(rhs[0], 3.0);
}

/**
 * Differential check between the two MNA solve paths: assemble the
 * crossbar conductance system exactly the way CrossbarMna::solve
 * linearizes it (wordline/bitline wire chains, driver conductances,
 * random per-cell couplings between the two planes) and require the
 * Jacobi-preconditioned CG solution to agree with the dense direct
 * solver to tight tolerance.
 */
struct CrossbarSystem
{
    std::vector<Triplet> triplets;
    std::vector<double> rhs;
    std::size_t unknowns = 0;
};

CrossbarSystem
randomCrossbarSystem(std::size_t rows, std::size_t cols, Rng &rng)
{
    // Electrical scales mirror CrossbarParams: ~3.3 V drivers, wire
    // segments of a few ohms, cells between LRS (~25 kOhm) and HRS
    // (~2.5 MOhm) with selector-suppressed conductance in between.
    const double vw = 3.3;
    const double vb = vw / 2.0;
    const double gWire = 1.0 / (2.5 + 2.5 * rng.nextDouble());
    const double gIn = 1.0 / (100.0 + 100.0 * rng.nextDouble());
    const double gOut = 1.0 / (100.0 + 100.0 * rng.nextDouble());
    const std::size_t selWl = rng.nextBounded(rows);
    const std::size_t selBl = rng.nextBounded(cols);

    auto wlNode = [cols](std::size_t i, std::size_t j) {
        return i * cols + j;
    };
    auto blNode = [rows, cols](std::size_t i, std::size_t j) {
        return rows * cols + j * rows + i;
    };

    CrossbarSystem sys;
    sys.unknowns = 2 * rows * cols;
    sys.rhs.assign(sys.unknowns, 0.0);

    for (std::size_t i = 0; i < rows; ++i) {
        double vSrc = i == selWl ? 0.0 : vb;
        std::size_t n0 = wlNode(i, 0);
        sys.triplets.push_back({n0, n0, gIn});
        sys.rhs[n0] += gIn * vSrc;
        for (std::size_t j = 0; j + 1 < cols; ++j) {
            std::size_t a = wlNode(i, j);
            std::size_t b = wlNode(i, j + 1);
            sys.triplets.push_back({a, a, gWire});
            sys.triplets.push_back({b, b, gWire});
            sys.triplets.push_back({a, b, -gWire});
            sys.triplets.push_back({b, a, -gWire});
        }
    }
    for (std::size_t j = 0; j < cols; ++j) {
        double vSrc = j == selBl ? vw : vb;
        std::size_t n0 = blNode(0, j);
        sys.triplets.push_back({n0, n0, gOut});
        sys.rhs[n0] += gOut * vSrc;
        for (std::size_t i = 0; i + 1 < rows; ++i) {
            std::size_t a = blNode(i, j);
            std::size_t b = blNode(i + 1, j);
            sys.triplets.push_back({a, a, gWire});
            sys.triplets.push_back({b, b, gWire});
            sys.triplets.push_back({a, b, -gWire});
            sys.triplets.push_back({b, a, -gWire});
        }
    }
    // Cells: log-uniform conductance across the LRS..HRS range, the
    // spread the Picard iteration's linearized systems actually span.
    for (std::size_t i = 0; i < rows; ++i) {
        for (std::size_t j = 0; j < cols; ++j) {
            double logG = -std::log(2.5e6) +
                          rng.nextDouble() *
                              (std::log(2.5e6) - std::log(2.5e4));
            double g = std::exp(logG);
            std::size_t a = wlNode(i, j);
            std::size_t b = blNode(i, j);
            sys.triplets.push_back({a, a, g});
            sys.triplets.push_back({b, b, g});
            sys.triplets.push_back({a, b, -g});
            sys.triplets.push_back({b, a, -g});
        }
    }
    return sys;
}

struct MnaShape
{
    std::size_t rows;
    std::size_t cols;
};

class CgVsDenseCrossbar : public ::testing::TestWithParam<MnaShape>
{
};

TEST_P(CgVsDenseCrossbar, MnaPathsAgree)
{
    auto [rows, cols] = GetParam();
    Rng rng(0x5eed0000 + rows * 64 + cols);
    for (int trial = 0; trial < 3; ++trial) {
        CrossbarSystem sys = randomCrossbarSystem(rows, cols, rng);
        SparseMatrix a(sys.unknowns, sys.triplets);

        std::vector<double> x;
        CgResult cg = conjugateGradient(a, sys.rhs, x, 1e-12);
        EXPECT_TRUE(cg.converged)
            << rows << "x" << cols << " trial " << trial
            << " residual " << cg.residualNorm;

        std::vector<double> dense = a.toDense();
        std::vector<double> ref = sys.rhs;
        denseSolveInPlace(dense, ref, sys.unknowns);

        // Node voltages are O(1) volts; 1e-6 V agreement is far
        // below any physical significance in the timing model.
        for (std::size_t k = 0; k < sys.unknowns; ++k)
            ASSERT_NEAR(x[k], ref[k], 1e-6)
                << rows << "x" << cols << " trial " << trial
                << " node " << k;
    }
}

INSTANTIATE_TEST_SUITE_P(Shapes, CgVsDenseCrossbar,
                         ::testing::Values(MnaShape{4, 4},
                                           MnaShape{8, 8},
                                           MnaShape{8, 16},
                                           MnaShape{16, 8},
                                           MnaShape{16, 16}));

} // namespace
} // namespace ladder
