/**
 * @file
 * Regression gate for the channel engine's determinism contract
 * (ctrl.channel-threads): for a fixed lookahead, every worker count
 * N >= 1 must produce byte-identical results — SimResult fields,
 * epoch snapshots, trace records, and the exported stats.json /
 * trace files — because the barrier commit merges all cross-channel
 * side effects in fixed channel order. The legacy shared-queue path
 * (N = 0) only has to keep running; it is allowed to differ since
 * the engine quantizes cross-channel delivery to window boundaries.
 *
 * Also covered: composition with sweep parallelism (jobs= x
 * channel-threads=), a small-window "torn barrier" stress meant for
 * the TSan build, and the wear-leveling fallback (a remapper copies
 * lines across channels, so installing one must drop the System back
 * to the legacy path with legacy-identical results).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <future>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/thread_pool.hh"
#include "sim/experiment.hh"
#include "wear/leader.hh"

namespace ladder
{
namespace
{

namespace fs = std::filesystem;

ExperimentConfig
quickConfig()
{
    ExperimentConfig cfg;
    cfg.warmupInstr = 20'000;
    cfg.measureInstr = 20'000;
    cfg.cacheScale = 1.0 / 16.0;
    cfg.epochCycles = 5'000;
    cfg.jobs = 1;
    return cfg;
}

/** Every SimResult field as raw bytes, so equality is bit-level. */
std::string
resultBytes(const SimResult &r)
{
    std::string out;
    auto put = [&out](const void *p, std::size_t n) {
        out.append(static_cast<const char *>(p), n);
    };
    for (double ipc : r.coreIpc)
        put(&ipc, sizeof(ipc));
    put(&r.ipc, sizeof(r.ipc));
    put(&r.instructions, sizeof(r.instructions));
    put(&r.elapsedNs, sizeof(r.elapsedNs));
    put(&r.avgReadLatencyNs, sizeof(r.avgReadLatencyNs));
    put(&r.avgWriteServiceNs, sizeof(r.avgWriteServiceNs));
    put(&r.avgWriteTwrNs, sizeof(r.avgWriteTwrNs));
    put(&r.dataReads, sizeof(r.dataReads));
    put(&r.metadataReads, sizeof(r.metadataReads));
    put(&r.smbReads, sizeof(r.smbReads));
    put(&r.dataWrites, sizeof(r.dataWrites));
    put(&r.metadataWrites, sizeof(r.metadataWrites));
    put(&r.readEnergyPj, sizeof(r.readEnergyPj));
    put(&r.writeEnergyPj, sizeof(r.writeEnergyPj));
    put(&r.fnwFlips, sizeof(r.fnwFlips));
    put(&r.fnwCancelled, sizeof(r.fnwCancelled));
    put(&r.estCounterDiffMean, sizeof(r.estCounterDiffMean));
    put(&r.estimatedCwMean, sizeof(r.estimatedCwMean));
    put(&r.accurateCwMean, sizeof(r.accurateCwMean));
    put(&r.spillInsertions, sizeof(r.spillInsertions));
    return out;
}

/** Everything one run observed, flattened for byte comparison. */
struct RunCapture
{
    std::string result;
    std::string epochs;
    std::string trace;
};

RunCapture
runCell(SchemeKind kind, const std::string &workload,
        unsigned channels, unsigned channelThreads,
        double lookaheadNs = 0.0,
        const ExperimentConfig &base = quickConfig())
{
    ExperimentConfig cfg = base;
    cfg.system.geometry.channels = channels;
    cfg.system.controller.channelThreads = channelThreads;
    cfg.system.controller.lookaheadNs = lookaheadNs;
    SystemConfig sys = makeSystemConfig(kind, workload, cfg);

    System system(sys);
    WriteTraceSink sink; // buffered
    system.attachTraceSink(&sink);

    RunCapture cap;
    cap.result = resultBytes(
        system.run(cfg.warmupInstr, cfg.measureInstr));
    for (const EpochSnapshot &epoch : system.epochs()) {
        cap.epochs.append(reinterpret_cast<const char *>(&epoch.tick),
                          sizeof(epoch.tick));
        cap.epochs.append(
            reinterpret_cast<const char *>(epoch.values.data()),
            epoch.values.size() * sizeof(double));
    }
    const auto &records = sink.records();
    cap.trace.assign(reinterpret_cast<const char *>(records.data()),
                     records.size() * sizeof(CtrlTraceRecord));
    return cap;
}

void
expectCapturesEqual(const RunCapture &a, const RunCapture &b,
                    const std::string &what)
{
    EXPECT_EQ(a.result, b.result) << what << ": SimResult differs";
    EXPECT_EQ(a.epochs, b.epochs) << what << ": epoch series differs";
    EXPECT_EQ(a.trace, b.trace) << what << ": trace records differ";
}

TEST(ChannelEngine, WorkerCountInvariantAcrossChannelCounts)
{
    // The contract under test: at fixed lookahead, results depend
    // only on the window structure, never on how many host threads
    // execute the channel queues.
    for (unsigned channels : {1u, 2u, 8u}) {
        SCOPED_TRACE("channels=" + std::to_string(channels));
        RunCapture ref =
            runCell(SchemeKind::LadderHybrid, "lbm", channels, 1);
        ASSERT_FALSE(ref.trace.empty());
        ASSERT_FALSE(ref.epochs.empty());
        for (unsigned ct : {2u, 8u}) {
            SCOPED_TRACE("channel-threads=" + std::to_string(ct));
            expectCapturesEqual(
                ref,
                runCell(SchemeKind::LadderHybrid, "lbm", channels,
                        ct),
                "LADDER-Hybrid/lbm");
        }
        // The legacy shared-queue path must keep running unchanged
        // (its bytes are covered by the golden tests; the engine is
        // allowed to differ from it by delivery quantization).
        RunCapture legacy =
            runCell(SchemeKind::LadderHybrid, "lbm", channels, 0);
        EXPECT_FALSE(legacy.trace.empty());
    }

    // A second scheme family: SplitReset samples per-channel scalar
    // shards through a different decideWrite path.
    expectCapturesEqual(
        runCell(SchemeKind::SplitReset, "astar", 2, 1),
        runCell(SchemeKind::SplitReset, "astar", 2, 8),
        "Split-reset/astar");
}

TEST(ChannelEngine, ComposesWithSweepJobs)
{
    // Two engine-enabled systems running concurrently under the
    // sweep pool must not disturb each other (each owns its queues,
    // outboxes, staging sinks, and scheme shards).
    const std::vector<SchemeKind> schemes = {SchemeKind::LadderHybrid};
    const std::vector<std::string> workloads = {"lbm", "astar"};
    ExperimentConfig cfg = quickConfig();
    cfg.system.controller.channelThreads = 2;

    cfg.jobs = 1;
    Matrix serial = runMatrixParallel(schemes, workloads, cfg);
    cfg.jobs = 2;
    Matrix parallel = runMatrixParallel(schemes, workloads, cfg);

    for (const auto &workload : workloads) {
        SCOPED_TRACE(workload);
        EXPECT_EQ(
            resultBytes(serial.at(SchemeKind::LadderHybrid, workload)),
            resultBytes(
                parallel.at(SchemeKind::LadderHybrid, workload)));
    }
}

std::map<std::string, std::string>
slurpTree(const fs::path &root)
{
    std::map<std::string, std::string> files;
    for (const auto &entry : fs::recursive_directory_iterator(root)) {
        if (!entry.is_regular_file())
            continue;
        std::ifstream is(entry.path(), std::ios::binary);
        std::ostringstream os;
        os << is.rdbuf();
        files[fs::relative(entry.path(), root).string()] = os.str();
    }
    return files;
}

TEST(ChannelEngine, ExportedStatsAndTracesAreByteIdentical)
{
    // The acceptance criterion as the user sees it: stats.json and
    // trace.bin on disk, channel-threads=8 vs =1, same bytes.
    fs::path base = fs::path(::testing::TempDir()) / "ladder_chan";
    fs::remove_all(base);
    auto sweep = [&](unsigned ct, const fs::path &dir) {
        ExperimentConfig cfg = quickConfig();
        cfg.system.geometry.channels = 8;
        cfg.system.controller.channelThreads = ct;
        cfg.traceFormat = "bin2";
        cfg.statsJsonDir = (dir / "stats").string();
        cfg.traceOutDir = (dir / "trace").string();
        runMatrixParallel({SchemeKind::LadderHybrid}, {"lbm"}, cfg);
    };
    sweep(1, base / "ct1");
    sweep(8, base / "ct8");

    auto ref = slurpTree(base / "ct1");
    auto par = slurpTree(base / "ct8");
    ASSERT_FALSE(ref.empty());
    ASSERT_EQ(ref.size(), par.size());
    for (const auto &[rel, bytes] : ref) {
        auto it = par.find(rel);
        ASSERT_NE(it, par.end()) << rel << " missing at ct=8";
        EXPECT_EQ(bytes, it->second)
            << rel << " differs between ct=1 and ct=8";
    }
}

TEST(ChannelEngine, TornBarrierStress)
{
    // Small windows maximize barrier crossings per simulated
    // nanosecond; two oversubscribed engine runs execute concurrently
    // so the TSan build sees worker pools contending. Both must match
    // the single-worker reference at the same lookahead.
    ExperimentConfig cfg = quickConfig();
    cfg.warmupInstr = 5'000;
    cfg.measureInstr = 5'000;
    const double lookaheadNs = 1.0;

    RunCapture ref = runCell(SchemeKind::LadderHybrid, "lbm", 8, 1,
                             lookaheadNs, cfg);
    ThreadPool pool(2);
    auto race = [&]() {
        return runCell(SchemeKind::LadderHybrid, "lbm", 8, 8,
                       lookaheadNs, cfg);
    };
    std::future<RunCapture> a = pool.submit(race);
    std::future<RunCapture> b = pool.submit(race);
    expectCapturesEqual(ref, a.get(), "concurrent run A");
    expectCapturesEqual(ref, b.get(), "concurrent run B");
}

TEST(ChannelEngine, RemapperDisablesEngineAndMatchesLegacy)
{
    // Wear-leveling moves lines across channels, which the sharded
    // store cannot express concurrently; installing a remapper must
    // drop back to the shared queue with legacy-identical results.
    ExperimentConfig cfg = quickConfig();
    SystemConfig sys =
        makeSystemConfig(SchemeKind::Location, "astar", cfg);

    auto runWith = [&](unsigned channelThreads) {
        SystemConfig s = sys;
        s.controller.channelThreads = channelThreads;
        System system(s);
        AddressMap map(s.geometry);
        LeaderRemapper remap(s.geometry, map.totalPages() * 3 / 4,
                             20, 64);
        system.setRemapper(&remap);
        return resultBytes(
            system.run(cfg.warmupInstr, cfg.measureInstr));
    };
    EXPECT_EQ(runWith(0), runWith(2));
}

} // namespace
} // namespace ladder
