/**
 * @file
 * Tests for the Chrome-trace/Perfetto profile exporter
 * (sim/profile_export): an instrumented sweep produces a JSON
 * document with several distinct host span names, thread_name
 * metadata, and a sim-time track per run cell; and turning profiling
 * on leaves the deterministic stats exports byte-identical.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hh"
#include "common/profiler.hh"
#include "sim/experiment.hh"
#include "sim/profile_export.hh"

namespace fs = std::filesystem;
using namespace ladder;

namespace
{

ExperimentConfig
quickConfig(const fs::path &dir)
{
    ExperimentConfig cfg;
    // The measure window must be long enough for dirty evictions to
    // reach the trace as write records (~60k instructions for astar).
    cfg.warmupInstr = 30'000;
    cfg.measureInstr = 60'000;
    cfg.cacheScale = 1.0 / 16.0;
    cfg.jobs = 2;
    cfg.statsJsonDir = (dir / "stats").string();
    cfg.traceOutDir = (dir / "traces").string();
    cfg.traceFormat = "bin2";
    return cfg;
}

std::string
slurp(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.is_open()) << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

} // namespace

TEST(ProfileExport, SweepTimelineHasHostAndSimTracks)
{
    fs::path dir =
        fs::path(::testing::TempDir()) / "ladder_profile_export";
    fs::remove_all(dir);
    fs::create_directories(dir);

    ExperimentConfig cfg = quickConfig(dir);
    cfg.profileOut = (dir / "profile.json").string();
    const std::vector<SchemeKind> schemes = {SchemeKind::Baseline,
                                             SchemeKind::LadderHybrid};
    const std::vector<std::string> workloads = {"astar"};
    runMatrixParallel(schemes, workloads, cfg);
    prof::reset();

    JsonValue doc = parseJson(slurp(cfg.profileOut));
    ASSERT_TRUE(doc.isObject());
    ASSERT_TRUE(doc.has("traceEvents"));
    const auto &events = doc.at("traceEvents").array;
    ASSERT_FALSE(events.empty());

    std::set<std::string> hostSpanNames;
    std::set<std::string> threadNames;
    std::set<double> simPids;
    std::set<std::string> simEventNames;
    for (const auto &ev : events) {
        const std::string &ph = ev.at("ph").string;
        const double pid = ev.at("pid").number;
        if (ph == "X" && pid == 1.0) {
            hostSpanNames.insert(ev.at("name").string);
            // Complete events carry microsecond ts/dur.
            EXPECT_TRUE(ev.at("ts").isNumber());
            EXPECT_GE(ev.at("dur").number, 0.0);
        }
        if (ph == "M" && ev.at("name").string == "thread_name")
            threadNames.insert(
                ev.at("args").at("name").string);
        if (ph == "X" && pid != 1.0) {
            simPids.insert(pid);
            simEventNames.insert(ev.at("name").string);
        }
    }
    EXPECT_GE(hostSpanNames.size(), 3u)
        << "host spans: " << hostSpanNames.size();
    EXPECT_TRUE(hostSpanNames.count("run baseline__astar"));
    EXPECT_FALSE(threadNames.empty());
    EXPECT_TRUE(threadNames.count("ladder-main"));
    // One sim-time process per run cell, carrying write/read events.
    EXPECT_EQ(simPids.size(), 2u);
    EXPECT_TRUE(simEventNames.count("write"));

    fs::remove_all(dir);
}

TEST(ProfileExport, ProfilingLeavesStatsExportsByteIdentical)
{
    fs::path dir =
        fs::path(::testing::TempDir()) / "ladder_profile_ident";
    fs::remove_all(dir);

    const std::vector<SchemeKind> schemes = {SchemeKind::Baseline};
    const std::vector<std::string> workloads = {"astar"};

    fs::path plainDir = dir / "plain";
    fs::create_directories(plainDir);
    ExperimentConfig plain = quickConfig(plainDir);
    runMatrixParallel(schemes, workloads, plain);

    fs::path profDir = dir / "profiled";
    fs::create_directories(profDir);
    ExperimentConfig profiled = quickConfig(profDir);
    profiled.profileOut = (profDir / "profile.json").string();
    runMatrixParallel(schemes, workloads, profiled);
    prof::reset();

    EXPECT_EQ(slurp(fs::path(plain.statsJsonDir) / "sweep.json"),
              slurp(fs::path(profiled.statsJsonDir) / "sweep.json"));
    EXPECT_EQ(slurp(fs::path(plain.statsJsonDir) /
                    "baseline__astar" / "stats.json"),
              slurp(fs::path(profiled.statsJsonDir) /
                    "baseline__astar" / "stats.json"));

    fs::remove_all(dir);
}

TEST(ProfileExport, WriteChromeTraceSerializesHandAuthoredLogs)
{
    prof::ThreadLog log;
    log.threadId = 0;
    log.name = "hand-authored";
    log.spans.push_back({"alpha", 1'000, 3'500});
    log.counters.push_back({"depth", 2'000, 4.0});

    ExperimentConfig cfg; // no traceOutDir: host tracks only
    std::ostringstream os;
    writeChromeTrace(os, {log}, cfg, {});

    JsonValue doc = parseJson(os.str());
    const auto &events = doc.at("traceEvents").array;
    bool sawSpan = false, sawCounter = false, sawName = false;
    for (const auto &ev : events) {
        const std::string &ph = ev.at("ph").string;
        if (ph == "X" && ev.at("name").string == "alpha") {
            sawSpan = true;
            EXPECT_DOUBLE_EQ(ev.at("ts").number, 1.0);
            EXPECT_DOUBLE_EQ(ev.at("dur").number, 2.5);
        }
        if (ph == "C" && ev.at("name").string == "depth") {
            sawCounter = true;
            EXPECT_DOUBLE_EQ(
                ev.at("args").at("value").number, 4.0);
        }
        if (ph == "M" && ev.at("name").string == "thread_name" &&
            ev.at("args").at("name").string == "hand-authored")
            sawName = true;
    }
    EXPECT_TRUE(sawSpan);
    EXPECT_TRUE(sawCounter);
    EXPECT_TRUE(sawName);
}
