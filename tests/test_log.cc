/**
 * @file
 * Tests for the logging layer (common/log): LADDER_LOG level-name
 * parsing (including garbage), threshold filtering with the
 * fatal/panic bypass, warn_once call-site dedup, and sink
 * replacement racing concurrent loggers (the TSan job runs this
 * binary).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/log.hh"

using namespace ladder;

namespace
{

/** Install a capturing sink for one test; restores stderr on exit. */
class CaptureSink
{
  public:
    CaptureSink()
    {
        setLogSink([this](LogLevel level, const std::string &msg) {
            entries_.push_back({level, msg});
        });
    }
    ~CaptureSink()
    {
        setLogSink(nullptr);
        setLogThreshold(LogLevel::Info);
    }
    const std::vector<std::pair<LogLevel, std::string>> &
    entries() const
    {
        return entries_;
    }

  private:
    std::vector<std::pair<LogLevel, std::string>> entries_;
};

} // namespace

TEST(LogLevelParse, AcceptsTheThreeDocumentedNames)
{
    LogLevel level = LogLevel::Panic;
    EXPECT_TRUE(parseLogLevelName("debug", level));
    EXPECT_EQ(level, LogLevel::Debug);
    EXPECT_TRUE(parseLogLevelName("info", level));
    EXPECT_EQ(level, LogLevel::Info);
    EXPECT_TRUE(parseLogLevelName("warn", level));
    EXPECT_EQ(level, LogLevel::Warn);
}

TEST(LogLevelParse, RejectsGarbageWithoutTouchingTheOutput)
{
    for (const char *bad :
         {"", "Debug", "WARN", "verbose", "warn ", " info", "2",
          "debug|info", "warning"}) {
        LogLevel level = LogLevel::Fatal;
        EXPECT_FALSE(parseLogLevelName(bad, level)) << bad;
        EXPECT_EQ(level, LogLevel::Fatal) << bad;
    }
}

TEST(LogThreshold, FiltersBelowAndKeepsFatalAndPanic)
{
    CaptureSink sink;
    setLogThreshold(LogLevel::Warn);
    debugf("dropped debug");
    inform("dropped info");
    warn("kept warn");
    ASSERT_EQ(sink.entries().size(), 1u);
    EXPECT_EQ(sink.entries()[0].first, LogLevel::Warn);
    EXPECT_EQ(sink.entries()[0].second, "kept warn");

    // Fatal/panic bypass any threshold (they throw; the message must
    // still reach the sink first).
    EXPECT_THROW(fatal("fatal passes"), std::runtime_error);
    EXPECT_THROW(panic("panic passes"), std::logic_error);
    ASSERT_EQ(sink.entries().size(), 3u);
    EXPECT_EQ(sink.entries()[1].first, LogLevel::Fatal);
    EXPECT_EQ(sink.entries()[2].first, LogLevel::Panic);

    setLogThreshold(LogLevel::Debug);
    debugf("now visible");
    ASSERT_EQ(sink.entries().size(), 4u);
    EXPECT_EQ(sink.entries()[3].first, LogLevel::Debug);
}

TEST(LogWarnOnce, FiresOncePerCallSiteAcrossThreads)
{
    CaptureSink sink;
    auto warnSite = [](int i) { warn_once("only once (i=%d)", i); };
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&warnSite]() {
            for (int i = 0; i < 100; ++i)
                warnSite(i);
        });
    }
    for (auto &thread : threads)
        thread.join();
    ASSERT_EQ(sink.entries().size(), 1u);
    // The first caller's formatted message, with the dedup notice.
    EXPECT_NE(sink.entries()[0].second.find("only once (i="),
              std::string::npos);
    EXPECT_NE(sink.entries()[0].second.find(
                  "further identical warnings suppressed"),
              std::string::npos);
    // A different call site is an independent guard.
    warn_once("another site");
    EXPECT_EQ(sink.entries().size(), 2u);
}

TEST(LogSink, ReplacementRacesConcurrentLoggersLosslessly)
{
    constexpr int loggers = 4;
    constexpr int perLogger = 250;
    std::atomic<std::uint64_t> countA{0}, countB{0};
    std::atomic<bool> start{false};

    setLogSink([&countA](LogLevel, const std::string &msg) {
        EXPECT_EQ(msg, "concurrent message");
        ++countA;
    });
    std::vector<std::thread> threads;
    for (int t = 0; t < loggers; ++t) {
        threads.emplace_back([&start]() {
            while (!start.load())
                std::this_thread::yield();
            for (int i = 0; i < perLogger; ++i)
                warn("concurrent message");
        });
    }
    start.store(true);
    // Swap the sink back and forth while the loggers hammer it; the
    // sink mutex makes each delivery hit exactly one of the two.
    for (int swap = 0; swap < 50; ++swap) {
        setLogSink([&countB](LogLevel, const std::string &msg) {
            EXPECT_EQ(msg, "concurrent message");
            ++countB;
        });
        setLogSink([&countA](LogLevel, const std::string &msg) {
            EXPECT_EQ(msg, "concurrent message");
            ++countA;
        });
    }
    for (auto &thread : threads)
        thread.join();
    setLogSink(nullptr);
    EXPECT_EQ(countA.load() + countB.load(),
              static_cast<std::uint64_t>(loggers) * perLogger);
}
