/** @file Tests for the sweep thread pool. */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/thread_pool.hh"

namespace ladder
{
namespace
{

TEST(ThreadPool, SubmitAndWaitRunsEveryJob)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.threadCount(), 4u);
    std::atomic<int> count{0};
    constexpr int jobs = 200;
    for (int i = 0; i < jobs; ++i)
        pool.submit([&count]() { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), jobs);
}

TEST(ThreadPool, FuturesCarryReturnValues)
{
    ThreadPool pool(3);
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 50; ++i)
        futures.push_back(pool.submit([i]() { return i * i; }));
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(futures[i].get(), i * i);
}

TEST(ThreadPool, ExceptionsPropagateThroughFutures)
{
    ThreadPool pool(2);
    auto ok = pool.submit([]() { return 7; });
    auto bad = pool.submit([]() -> int {
        throw std::runtime_error("job failed");
    });
    EXPECT_EQ(ok.get(), 7);
    EXPECT_THROW(bad.get(), std::runtime_error);
    // The pool survives a throwing job and keeps executing.
    auto after = pool.submit([]() { return 11; });
    EXPECT_EQ(after.get(), 11);
}

TEST(ThreadPool, DestructionDrainsQueuedWork)
{
    std::atomic<int> count{0};
    constexpr int jobs = 64;
    {
        ThreadPool pool(2);
        for (int i = 0; i < jobs; ++i) {
            pool.submit([&count]() {
                std::this_thread::sleep_for(
                    std::chrono::microseconds(200));
                ++count;
            });
        }
        // Destructor runs with most jobs still queued.
    }
    EXPECT_EQ(count.load(), jobs);
}

TEST(ThreadPool, SingleWorkerMatchesSerialExecution)
{
    // With one worker and FIFO dispatch, execution order is exactly
    // submission order — the jobs=1 path is serially equivalent.
    ThreadPool pool(1);
    std::vector<int> order;
    constexpr int jobs = 100;
    for (int i = 0; i < jobs; ++i)
        pool.submit([&order, i]() { order.push_back(i); });
    pool.wait();
    ASSERT_EQ(order.size(), static_cast<std::size_t>(jobs));
    for (int i = 0; i < jobs; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, WaitIsReusableAcrossBatches)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    for (int batch = 0; batch < 3; ++batch) {
        for (int i = 0; i < 20; ++i)
            pool.submit([&count]() { ++count; });
        pool.wait();
        EXPECT_EQ(count.load(), 20 * (batch + 1));
    }
}

TEST(ThreadPool, ZeroThreadsSelectsHardwareDefault)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.threadCount(), ThreadPool::defaultJobs());
    EXPECT_GE(ThreadPool::defaultJobs(), 1u);
    auto f = pool.submit([]() { return 42; });
    EXPECT_EQ(f.get(), 42);
}

} // namespace
} // namespace ladder
