/** @file Unit tests for the write-latency schemes. */

#include <gtest/gtest.h>

#include <memory>

#include "common/rng.hh"
#include "ctrl/controller.hh"
#include "schemes/factory.hh"
#include "schemes/ladder_schemes.hh"
#include "schemes/simple_schemes.hh"
#include "schemes/split_reset.hh"

namespace ladder
{
namespace
{

struct SchemeRig
{
    EventQueue events;
    MemoryGeometry geo;
    BackingStore store;
    const TimingModel &timing;
    std::shared_ptr<MetadataLayout> layout;
    std::shared_ptr<WriteScheme> scheme;
    std::unique_ptr<MemoryController> ctrl;

    explicit SchemeRig(SchemeKind kind)
        : store(geo, true, 0.0),
          timing(cachedTimingModel(CrossbarParams{}))
    {
        AddressMap map(geo);
        layout = std::make_shared<MetadataLayout>(
            geo, map.totalPages() * 3 / 4);
        scheme = makeScheme(kind, CrossbarParams{}, layout, {});
        ctrl = std::make_unique<MemoryController>(
            events, ControllerConfig{}, geo, 0, store, timing,
            scheme);
    }

    /** Dispatch-style decision for a fabricated entry. */
    WriteDecision
    decide(Addr addr, const LineData &data)
    {
        WriteEntry entry;
        entry.addr = addr;
        entry.data = data;
        entry.loc = ctrl->addressMap().decode(addr);
        scheme->onWriteEnqueued(*ctrl, entry);
        entry.physData = scheme->encodeData(addr, data);
        // Satisfy metadata presence for LADDER schemes.
        for (Addr metaAddr : entry.metaAddrs) {
            Addr victim;
            if (!ctrl->metadataCache().contains(metaAddr))
                ctrl->metadataCache().insert(metaAddr, 1, victim);
        }
        // The controller scans the store once per dispatch and hands
        // the counts to the scheme; mirror that contract here.
        entry.dispatchCw = store.maxMatLrsCount(entry.loc.pageIndex);
        entry.dispatchCbl = store.maxSelectedBitlineLrs(addr);
        return scheme->decideWrite(*ctrl, entry, entry.physData);
    }
};

/** A channel-0 data address at a given page offset. */
Addr
ch0Page(unsigned n)
{
    MemoryGeometry geo;
    AddressMap map(geo);
    unsigned found = 0;
    for (std::uint64_t p = 0;; ++p) {
        if (map.decode(p * 4096).channel == 0) {
            if (found == n)
                return p * 4096;
            ++found;
        }
    }
}

TEST(Schemes, FactoryNamesRoundTrip)
{
    for (SchemeKind kind : allSchemeKinds()) {
        EXPECT_EQ(schemeKindFromName(schemeKindName(kind)), kind);
    }
    EXPECT_EQ(allSchemeKinds().size(), 7u);
    EXPECT_THROW(schemeKindFromName("nonsense"), std::runtime_error);
}

TEST(Schemes, BaselineIsWorstCase)
{
    SchemeRig rig(SchemeKind::Baseline);
    WriteDecision d = rig.decide(ch0Page(0), filledLine(0));
    EXPECT_NEAR(d.latencyNs, 658.0, 1.0);
    // Identical everywhere.
    WriteDecision d2 = rig.decide(ch0Page(3) + 63 * lineBytes,
                                  filledLine(0xff));
    EXPECT_DOUBLE_EQ(d.latencyNs, d2.latencyNs);
}

TEST(Schemes, AllLatenciesWithinEnvelope)
{
    Rng rng(1);
    for (SchemeKind kind : allSchemeKinds()) {
        SchemeRig rig(kind);
        for (int i = 0; i < 10; ++i) {
            Addr addr = ch0Page(static_cast<unsigned>(
                            rng.nextBounded(8))) +
                        rng.nextBounded(64) * lineBytes;
            LineData data;
            for (auto &b : data)
                b = static_cast<std::uint8_t>(rng.nextBounded(256));
            WriteDecision d = rig.decide(addr, data);
            EXPECT_GE(d.latencyNs, 29.0) << schemeKindName(kind);
            // Split-reset may need two phases.
            EXPECT_LE(d.latencyNs, 2 * 658.0) << schemeKindName(kind);
        }
    }
}

TEST(Schemes, OracleNeverSlowerThanLocation)
{
    SchemeRig oracle(SchemeKind::Oracle);
    SchemeRig location(SchemeKind::Location);
    Rng rng(2);
    for (int i = 0; i < 20; ++i) {
        Addr addr =
            ch0Page(static_cast<unsigned>(rng.nextBounded(8))) +
            rng.nextBounded(64) * lineBytes;
        LineData data;
        for (auto &b : data)
            b = static_cast<std::uint8_t>(rng.nextBounded(256));
        oracle.store.write(addr, data);
        location.store.write(addr, data);
        double to = oracle.decide(addr, data).latencyNs;
        double tl = location.decide(addr, data).latencyNs;
        EXPECT_LE(to, tl + 1e-9);
    }
}

TEST(Schemes, LadderEstNeverFasterThanOracle)
{
    // The estimate upper-bounds the true count, so Est's latency is
    // always sufficient (>= Oracle's at the same state).
    SchemeRig est(SchemeKind::LadderEstNoShift);
    SchemeRig oracle(SchemeKind::Oracle);
    Rng rng(3);
    Addr page = ch0Page(1);
    for (unsigned b = 0; b < 64; ++b) {
        LineData data;
        for (auto &byte : data)
            byte = static_cast<std::uint8_t>(rng.nextBounded(256));
        Addr addr = page + b * lineBytes;
        est.store.write(addr, data);
        oracle.store.write(addr, data);
    }
    LineData next = filledLine(0x33);
    double tEst = est.decide(page, next).latencyNs;
    double tOracle = oracle.decide(page, next).latencyNs;
    EXPECT_GE(tEst, tOracle - 1e-9);
}

TEST(Schemes, EstShiftingRoundTrips)
{
    auto layout = std::make_shared<MetadataLayout>(
        MemoryGeometry{}, 1000);
    LadderEstScheme scheme(layout, true);
    Rng rng(4);
    for (int i = 0; i < 100; ++i) {
        Addr addr = rng.nextBounded(1000) * lineBytes;
        LineData data;
        for (auto &b : data)
            b = static_cast<std::uint8_t>(rng.nextBounded(256));
        LineData encoded = scheme.encodeData(addr, data);
        EXPECT_EQ(scheme.decodeData(addr, encoded), data);
        EXPECT_EQ(popcountLine(encoded), popcountLine(data));
    }
}

TEST(Schemes, EstShiftingIsAddressDependent)
{
    auto layout = std::make_shared<MetadataLayout>(
        MemoryGeometry{}, 1000);
    LadderEstScheme scheme(layout, true);
    LineData data;
    for (unsigned i = 0; i < lineBytes; ++i)
        data[i] = static_cast<std::uint8_t>(i * 17 + 3);
    LineData e1 = scheme.encodeData(0, data);
    LineData e2 = scheme.encodeData(lineBytes, data); // next block
    EXPECT_NE(e1, e2);
}

TEST(Schemes, NoShiftVariantIsIdentity)
{
    auto layout = std::make_shared<MetadataLayout>(
        MemoryGeometry{}, 1000);
    LadderEstScheme scheme(layout, false);
    LineData data = filledLine(0xa5);
    EXPECT_EQ(scheme.encodeData(64, data), data);
}

TEST(Schemes, SplitResetPhases)
{
    SchemeRig rig(SchemeKind::SplitReset);
    Addr addr = ch0Page(0);
    // Compressible (all-zero) line: one half-RESET phase.
    WriteDecision one = rig.decide(addr, filledLine(0x00));
    // Incompressible random line: two phases.
    Rng rng(5);
    LineData noisy;
    for (auto &b : noisy)
        b = static_cast<std::uint8_t>(rng.nextBounded(256));
    WriteDecision two = rig.decide(addr, noisy);
    EXPECT_NEAR(two.latencyNs, 2.0 * one.latencyNs, 1e-9);
    auto *sr = dynamic_cast<SplitResetScheme *>(rig.scheme.get());
    ASSERT_NE(sr, nullptr);
    EXPECT_EQ(sr->compressibleWrites.value(), 1.0);
    EXPECT_EQ(sr->incompressibleWrites.value(), 1.0);
}

TEST(Schemes, BlpUsesBitlineCounts)
{
    SchemeRig rig(SchemeKind::Blp);
    Addr addr = ch0Page(2);
    double sparse = rig.decide(addr, filledLine(0)).latencyNs;
    // Load the bitlines of this block's slot via sibling rows.
    MemoryGeometry geo;
    AddressMap map(geo);
    BlockLocation loc = map.decode(addr);
    for (unsigned w = 0; w < 200; ++w) {
        BlockLocation sibling = loc;
        sibling.wordline = (loc.wordline + 1 + w) % geo.matRows;
        rig.store.write(map.encode(sibling), filledLine(0xff));
    }
    double dense = rig.decide(addr, filledLine(0)).latencyNs;
    EXPECT_GT(dense, sparse);
}

TEST(Schemes, HybridUsesLowPrecisionNearDriver)
{
    SchemeRig rig(SchemeKind::LadderHybrid);
    MemoryGeometry geo;
    AddressMap map(geo);
    // Find channel-0 pages on a near and a far wordline.
    Addr nearAddr = invalidAddr, farAddr = invalidAddr;
    for (std::uint64_t p = 0; p < 4096; ++p) {
        BlockLocation loc = map.decode(p * 4096);
        if (loc.channel != 0)
            continue;
        if (loc.wordline < 128 && nearAddr == invalidAddr)
            nearAddr = p * 4096;
        if (loc.wordline >= 128 && farAddr == invalidAddr)
            farAddr = p * 4096;
    }
    WriteEntry nearEntry, farEntry;
    nearEntry.addr = nearAddr;
    nearEntry.loc = map.decode(nearAddr);
    farEntry.addr = farAddr;
    farEntry.loc = map.decode(farAddr);
    rig.scheme->onWriteEnqueued(*rig.ctrl, nearEntry);
    rig.scheme->onWriteEnqueued(*rig.ctrl, farEntry);
    ASSERT_EQ(nearEntry.metaAddrs.size(), 1u);
    ASSERT_EQ(farEntry.metaAddrs.size(), 1u);
    // Near pages use the shared low-precision region; far pages the
    // per-page Est lines.
    EXPECT_NE(nearEntry.metaAddrs[0],
              rig.layout->estLine(nearEntry.loc.pageIndex));
    EXPECT_EQ(farEntry.metaAddrs[0],
              rig.layout->estLine(farEntry.loc.pageIndex));
}

TEST(Schemes, ConstrainedFnwFlagOnlyForLadder)
{
    for (SchemeKind kind : allSchemeKinds()) {
        auto layout = std::make_shared<MetadataLayout>(
            MemoryGeometry{}, 1000);
        auto scheme = makeScheme(kind, CrossbarParams{}, layout, {});
        bool isLadder = kind == SchemeKind::LadderBasic ||
                        kind == SchemeKind::LadderEst ||
                        kind == SchemeKind::LadderHybrid;
        EXPECT_EQ(scheme->constrainedFnw(), isLadder)
            << schemeKindName(kind);
    }
}

} // namespace
} // namespace ladder
