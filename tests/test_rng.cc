/** @file Tests for the deterministic RNG. */

#include <gtest/gtest.h>

#include "common/rng.hh"

namespace ladder
{
namespace
{

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += a.next() == b.next();
    EXPECT_LT(equal, 3);
}

TEST(Rng, BoundedStaysInRange)
{
    Rng rng(7);
    for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.nextBounded(bound), bound);
    }
}

TEST(Rng, BoundedIsRoughlyUniform)
{
    Rng rng(8);
    constexpr int buckets = 8;
    int counts[buckets] = {};
    constexpr int draws = 80000;
    for (int i = 0; i < draws; ++i)
        ++counts[rng.nextBounded(buckets)];
    for (int b = 0; b < buckets; ++b) {
        EXPECT_NEAR(counts[b], draws / buckets, draws / buckets / 5)
            << "bucket " << b;
    }
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(9);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        double v = rng.nextDouble();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, BoolProbability)
{
    Rng rng(10);
    int trues = 0;
    for (int i = 0; i < 10000; ++i)
        trues += rng.nextBool(0.3);
    EXPECT_NEAR(trues / 10000.0, 0.3, 0.03);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(11);
    bool sawLo = false, sawHi = false;
    for (int i = 0; i < 2000; ++i) {
        auto v = rng.nextRange(-3, 3);
        ASSERT_GE(v, -3);
        ASSERT_LE(v, 3);
        sawLo |= v == -3;
        sawHi |= v == 3;
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
}

TEST(Rng, GeometricMean)
{
    Rng rng(12);
    double p = 0.25;
    double sum = 0.0;
    constexpr int draws = 20000;
    for (int i = 0; i < draws; ++i)
        sum += static_cast<double>(rng.nextGeometric(p));
    // Mean of failures-before-success is (1-p)/p = 3.
    EXPECT_NEAR(sum / draws, 3.0, 0.15);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(13);
    double sum = 0.0, sq = 0.0;
    constexpr int draws = 20000;
    for (int i = 0; i < draws; ++i) {
        double v = rng.nextGaussian();
        sum += v;
        sq += v * v;
    }
    EXPECT_NEAR(sum / draws, 0.0, 0.05);
    EXPECT_NEAR(sq / draws, 1.0, 0.08);
}

TEST(Rng, ZipfRangeAndSkew)
{
    Rng rng(14);
    constexpr std::uint64_t n = 100;
    std::uint64_t first = 0, total = 0;
    for (int i = 0; i < 20000; ++i) {
        std::uint64_t v = rng.nextZipf(n, 0.9);
        ASSERT_LT(v, n);
        first += v == 0;
        ++total;
    }
    // Rank 0 must be by far the most popular.
    EXPECT_GT(first, total / 20);
}

TEST(Rng, ZipfSingleton)
{
    Rng rng(15);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(rng.nextZipf(1, 1.2), 0u);
}

TEST(Rng, SplitIndependence)
{
    Rng parent(16);
    Rng child = parent.split();
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += parent.next() == child.next();
    EXPECT_LT(equal, 3);
}

TEST(Rng, Mix64Stable)
{
    EXPECT_EQ(mix64(1), mix64(1));
    EXPECT_NE(mix64(1), mix64(2));
}

} // namespace
} // namespace ladder
