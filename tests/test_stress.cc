/**
 * @file
 * Randomized stress tests: thousands of interleaved reads and writes
 * through the full controller (every scheme, wear-leveling on/off)
 * checked against a flat reference memory. Catches any corruption in
 * the encode/FNW/shift/remap/forwarding chain.
 */

#include <gtest/gtest.h>

#include <memory>
#include <unordered_map>

#include "common/rng.hh"
#include "ctrl/controller.hh"
#include "schemes/factory.hh"
#include "wear/start_gap.hh"

namespace ladder
{
namespace
{

struct StressRig
{
    EventQueue events;
    MemoryGeometry geo;
    BackingStore store;
    const TimingModel &timing;
    std::shared_ptr<MetadataLayout> layout;
    std::shared_ptr<WriteScheme> scheme;
    std::vector<std::unique_ptr<MemoryController>> controllers;
    std::unique_ptr<StartGapRemapper> remap;

    StressRig(SchemeKind kind, bool wearLeveling)
        : store(geo, true, 0.0),
          timing(cachedTimingModel(CrossbarParams{}))
    {
        AddressMap map(geo);
        layout = std::make_shared<MetadataLayout>(
            geo, map.totalPages() * 3 / 4);
        scheme = makeScheme(kind, CrossbarParams{}, layout, {});
        for (unsigned ch = 0; ch < geo.channels; ++ch)
            controllers.push_back(
                std::make_unique<MemoryController>(
                    events, ControllerConfig{}, geo, ch, store,
                    timing, scheme));
        if (wearLeveling) {
            remap = std::make_unique<StartGapRemapper>(0, 4096, 16);
            for (auto &ctrl : controllers)
                ctrl->setRemapper(remap.get());
        }
    }

    MemoryController &
    route(Addr addr)
    {
        AddressMap map(geo);
        return *controllers[map.decode(addr).channel];
    }
};

using StressParam = std::tuple<SchemeKind, bool>;

class ControllerStress
    : public ::testing::TestWithParam<StressParam>
{
};

TEST_P(ControllerStress, RandomTrafficNeverCorruptsData)
{
    auto [kind, wearLeveling] = GetParam();
    StressRig rig(kind, wearLeveling);
    Rng rng(0xabcd + static_cast<unsigned>(kind));
    std::unordered_map<Addr, LineData> reference;

    constexpr unsigned lines = 2048; // spans many pages and banks
    unsigned mismatches = 0;
    for (int op = 0; op < 4000; ++op) {
        Addr addr = rng.nextBounded(lines) * lineBytes;
        if (rng.nextBool(0.55)) {
            LineData data;
            for (auto &b : data)
                b = static_cast<std::uint8_t>(rng.nextBounded(256));
            MemoryController &ctrl = rig.route(addr);
            if (!ctrl.canAcceptWrite())
                rig.events.runUntil(); // drain, then write
            ctrl.enqueueWrite(addr, data);
            reference[addr] = data;
        } else {
            auto it = reference.find(addr);
            if (it == reference.end())
                continue;
            LineData expect = it->second;
            MemoryController &ctrl = rig.route(addr);
            if (!ctrl.canAcceptRead())
                rig.events.runUntil();
            ctrl.enqueueRead(
                addr, [&mismatches, expect](const LineData &d,
                                            Tick) {
                    mismatches += d != expect;
                });
        }
        // Occasionally let the machine drain completely.
        if (rng.nextBool(0.02))
            rig.events.runUntil();
    }
    rig.events.runUntil();
    EXPECT_EQ(mismatches, 0u);

    // Final sweep: every line readable with its last-written value.
    unsigned checked = 0;
    for (const auto &entry : reference) {
        LineData out{};
        rig.route(entry.first)
            .enqueueRead(entry.first,
                         [&out](const LineData &d, Tick) { out = d; });
        rig.events.runUntil();
        ASSERT_EQ(out, entry.second) << "addr " << entry.first;
        ++checked;
    }
    EXPECT_GT(checked, 500u);
}

INSTANTIATE_TEST_SUITE_P(
    SchemesAndWear, ControllerStress,
    ::testing::Values(
        StressParam{SchemeKind::Baseline, false},
        StressParam{SchemeKind::SplitReset, false},
        StressParam{SchemeKind::Blp, false},
        StressParam{SchemeKind::LadderBasic, false},
        StressParam{SchemeKind::LadderEst, false},
        StressParam{SchemeKind::LadderHybrid, false},
        StressParam{SchemeKind::Oracle, false},
        StressParam{SchemeKind::LadderEst, true},
        StressParam{SchemeKind::LadderHybrid, true},
        StressParam{SchemeKind::Baseline, true}));

TEST(ControllerStress, ReadsObserveLatestOfBackToBackWrites)
{
    StressRig rig(SchemeKind::LadderEst, false);
    Addr addr = 0;
    // Issue several writes to one line without draining, reading
    // between them: each read must observe the newest data.
    for (int round = 0; round < 10; ++round) {
        LineData v1 = filledLine(static_cast<std::uint8_t>(round));
        LineData v2 =
            filledLine(static_cast<std::uint8_t>(round + 100));
        rig.route(addr).enqueueWrite(addr, v1);
        rig.route(addr).enqueueWrite(addr, v2); // coalesces
        LineData seen{};
        rig.route(addr).enqueueRead(
            addr, [&seen](const LineData &d, Tick) { seen = d; });
        rig.events.runUntil();
        EXPECT_EQ(seen, v2) << "round " << round;
    }
}

} // namespace
} // namespace ladder
