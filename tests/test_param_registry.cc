/**
 * @file
 * Tests for the declarative configuration spine: the typed parameter
 * registry, the layered resolver (defaults < config file < sweep
 * params < CLI), strict rejection of unknown/malformed/out-of-range
 * keys, sweep-spec parsing, dump/reload round-trips, and byte-exact
 * equivalence between file-driven and CLI-driven runs at any job
 * count.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hh"
#include "sim/config_resolve.hh"
#include "sim/experiment.hh"

#ifndef LADDER_EXAMPLES_DIR
#error "LADDER_EXAMPLES_DIR must point at the committed examples/"
#endif

namespace fs = std::filesystem;

namespace ladder
{
namespace
{

/** Pin the manifest before gitDescribeString can memoize (see
 *  test_golden_run). */
const bool pinnedDescribe = []() {
    ::setenv("LADDER_GIT_DESCRIBE", "golden", /*overwrite=*/1);
    return true;
}();

ResolvedExperiment
resolve(std::vector<const char *> args)
{
    args.insert(args.begin(), "prog");
    return resolveExperiment(static_cast<int>(args.size()),
                             args.data(), ExperimentConfig{});
}

std::string
errorOf(std::vector<const char *> args)
{
    try {
        resolve(std::move(args));
    } catch (const std::runtime_error &e) {
        return e.what();
    }
    return "";
}

fs::path
tempFile(const std::string &name, const std::string &content)
{
    fs::path dir = fs::path(::testing::TempDir()) / "ladder_registry";
    fs::create_directories(dir);
    fs::path path = dir / name;
    std::ofstream os(path, std::ios::binary);
    os << content;
    return path;
}

std::string
dumpString(const ExperimentConfig &cfg)
{
    std::ostringstream os;
    dumpEffectiveConfig(cfg, os);
    return os.str();
}

std::string
slurp(const fs::path &path)
{
    std::ifstream is(path, std::ios::binary);
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

TEST(ParamRegistry, DumpIsLoadableAndRoundTrips)
{
    ExperimentConfig defaults;
    std::string first = dumpString(defaults);

    // The dump must be valid JSON...
    JsonValue doc = parseJson(first);
    ASSERT_TRUE(doc.isObject());
    // ...and applying it back onto fresh defaults must be the
    // identity: same keys, same values, same bytes.
    ExperimentConfig reloaded;
    experimentRegistry().applyJson(reloaded, doc, "round-trip");
    EXPECT_EQ(first, dumpString(reloaded));
}

TEST(ParamRegistry, PrecedenceFileThenCli)
{
    fs::path file = tempFile("precedence.json",
                             "{\"measure\": 111, \"warmup\": 222}\n");
    std::string configArg = "config=" + file.string();
    ResolvedExperiment r =
        resolve({configArg.c_str(), "measure=333"});
    // CLI beats the file; the file beats the compiled default.
    EXPECT_EQ(r.config.measureInstr, 333u);
    EXPECT_EQ(r.config.warmupInstr, 222u);
    EXPECT_EQ(r.configFile, file.string());
}

TEST(ParamRegistry, PrecedenceSweepParamsBetweenFileAndCli)
{
    fs::path file = tempFile("layer-config.json",
                             "{\"measure\": 100, \"seed\": 5}\n");
    fs::path sweep = tempFile(
        "layer-sweep.json",
        "{\"params\": {\"measure\": 200, \"granularity\": 16}}\n");
    std::string configArg = "config=" + file.string();
    std::string sweepArg = "sweep=" + sweep.string();
    ResolvedExperiment r = resolve(
        {configArg.c_str(), sweepArg.c_str(), "measure=300"});
    EXPECT_EQ(r.config.measureInstr, 300u); // CLI wins
    EXPECT_EQ(r.config.granularity, 16u);   // sweep params beat file
    EXPECT_EQ(r.config.seed, 5u);           // file beats defaults
}

TEST(ParamRegistry, CliArgvOrderIsLastWins)
{
    ResolvedExperiment r = resolve({"measure=10", "measure=20"});
    EXPECT_EQ(r.config.measureInstr, 20u);
}

TEST(ParamRegistry, UnknownCliKeySuggestsNearMiss)
{
    std::string what = errorOf({"measrue=5"});
    EXPECT_NE(what.find("unknown config key 'measrue'"),
              std::string::npos)
        << what;
    EXPECT_NE(what.find("did you mean 'measure'?"),
              std::string::npos)
        << what;
}

TEST(ParamRegistry, NegativeValueIntoUnsignedIsRejected)
{
    // The old parseBenchArgs cast getInt into unsigned fields, so
    // measure=-1 silently wrapped to ~1.8e19 instructions.
    std::string what = errorOf({"measure=-1"});
    EXPECT_NE(what.find("measure=-1"), std::string::npos) << what;
    EXPECT_NE(what.find("unsigned"), std::string::npos) << what;

    EXPECT_NE(errorOf({"jobs=-3"}).find("unsigned"),
              std::string::npos);
    EXPECT_NE(errorOf({"trace-chunk=-1"}).find("unsigned"),
              std::string::npos);
}

TEST(ParamRegistry, OutOfRangeIsDiagnosedWithDoc)
{
    std::string what = errorOf({"ctrl.drain-high=1.5"});
    EXPECT_NE(what.find("out of range"), std::string::npos) << what;
    // The doc string rides along so the user learns what the knob is.
    EXPECT_NE(what.find("drain"), std::string::npos) << what;

    EXPECT_NE(errorOf({"granularity=0"}).find("out of range"),
              std::string::npos);
    EXPECT_NE(errorOf({"core.rob=4"}).find("out of range"),
              std::string::npos);
}

TEST(ParamRegistry, NonNumericValueIsRejected)
{
    EXPECT_NE(errorOf({"measure=abc"}).find("not an unsigned"),
              std::string::npos);
    EXPECT_NE(errorOf({"cache-scale=fast"}).find("not a number"),
              std::string::npos);
    EXPECT_NE(errorOf({"trace-stream=maybe"}).find("not a boolean"),
              std::string::npos);
}

TEST(ParamRegistry, BadChoiceSuggests)
{
    std::string what = errorOf({"trace-format=binx"});
    EXPECT_NE(what.find("{csv|bin|bin2}"), std::string::npos) << what;

    what = errorOf({"fnw-mode=clasical"});
    EXPECT_NE(what.find("did you mean 'classical'?"),
              std::string::npos)
        << what;
}

TEST(ParamRegistry, EnumParsesAllMappedNames)
{
    EXPECT_EQ(resolve({"fnw-mode=off"}).config.fnwMode, FnwMode::Off);
    EXPECT_EQ(resolve({"fnw-mode=constrained"}).config.fnwMode,
              FnwMode::Constrained);
}

TEST(ParamRegistry, MalformedConfigFileNamesTheFile)
{
    fs::path file = tempFile("broken.json", "{ nope\n");
    std::string configArg = "config=" + file.string();
    std::string what = errorOf({configArg.c_str()});
    EXPECT_NE(what.find("not valid JSON"), std::string::npos) << what;
    EXPECT_NE(what.find("broken.json"), std::string::npos) << what;
}

TEST(ParamRegistry, MissingConfigFileIsFatal)
{
    EXPECT_NE(errorOf({"config=/nonexistent/nope.json"})
                  .find("cannot read"),
              std::string::npos);
}

TEST(ParamRegistry, UnknownKeyInConfigFileNamesTheFile)
{
    fs::path file = tempFile("typo.json", "{\"measrue\": 5}\n");
    std::string configArg = "config=" + file.string();
    std::string what = errorOf({configArg.c_str()});
    EXPECT_NE(what.find("typo.json"), std::string::npos) << what;
    EXPECT_NE(what.find("did you mean 'measure'?"), std::string::npos)
        << what;
}

TEST(ParamRegistry, ConfigFileMustBeFlatObject)
{
    fs::path file = tempFile("array.json", "[1, 2]\n");
    std::string configArg = "config=" + file.string();
    EXPECT_NE(errorOf({configArg.c_str()}).find("flat JSON object"),
              std::string::npos);
}

TEST(ParamRegistry, SweepSpecSelectsGridAndParams)
{
    fs::path sweep = tempFile(
        "grid.json",
        "{\"schemes\": [\"baseline\", \"LADDER-Hybrid\"],\n"
        " \"workloads\": [\"lbm\", \"astar\"],\n"
        " \"params\": {\"measure\": 4000}}\n");
    std::string sweepArg = "sweep=" + sweep.string();
    ResolvedExperiment r = resolve({sweepArg.c_str()});
    ASSERT_TRUE(r.schemesExplicit);
    ASSERT_TRUE(r.workloadsExplicit);
    EXPECT_EQ(r.schemes,
              (std::vector<SchemeKind>{SchemeKind::Baseline,
                                       SchemeKind::LadderHybrid}));
    EXPECT_EQ(r.workloads,
              (std::vector<std::string>{"lbm", "astar"}));
    EXPECT_EQ(r.config.measureInstr, 4000u);
}

TEST(ParamRegistry, SweepSpecUnknownTopLevelKeySuggests)
{
    fs::path sweep =
        tempFile("badkey.json", "{\"scheems\": [\"baseline\"]}\n");
    std::string sweepArg = "sweep=" + sweep.string();
    std::string what = errorOf({sweepArg.c_str()});
    EXPECT_NE(what.find("unknown key 'scheems'"), std::string::npos)
        << what;
    EXPECT_NE(what.find("did you mean 'schemes'?"), std::string::npos)
        << what;
}

TEST(ParamRegistry, SweepSpecRejectsNonStringLists)
{
    fs::path sweep =
        tempFile("badlist.json", "{\"workloads\": [1, 2]}\n");
    std::string sweepArg = "sweep=" + sweep.string();
    EXPECT_NE(
        errorOf({sweepArg.c_str()}).find("array of strings"),
        std::string::npos);
}

TEST(ParamRegistry, SweepSpecIncludeLayersBeforeIncluder)
{
    tempFile("inc_base.json",
             "{\"schemes\": [\"baseline\"],\n"
             " \"params\": {\"measure\": 1000, \"warmup\": 500}}\n");
    // A relative include= resolves against the including file's
    // directory; the includer's own keys win where they overlap.
    fs::path top = tempFile(
        "inc_top.json",
        "{\"include\": \"inc_base.json\",\n"
        " \"workloads\": [\"lbm\"],\n"
        " \"params\": {\"measure\": 4000}}\n");
    std::string sweepArg = "sweep=" + top.string();
    ResolvedExperiment r = resolve({sweepArg.c_str()});
    EXPECT_EQ(r.schemes,
              (std::vector<SchemeKind>{SchemeKind::Baseline}));
    EXPECT_EQ(r.workloads, (std::vector<std::string>{"lbm"}));
    EXPECT_EQ(r.config.measureInstr, 4000u); // includer overrides
    EXPECT_EQ(r.config.warmupInstr, 500u);   // included value kept
}

TEST(ParamRegistry, SweepSpecIncludeCycleIsFatal)
{
    fs::path a =
        tempFile("cyc_a.json", "{\"include\": \"cyc_b.json\"}\n");
    tempFile("cyc_b.json", "{\"include\": \"cyc_a.json\"}\n");
    std::string sweepArg = "sweep=" + a.string();
    std::string what = errorOf({sweepArg.c_str()});
    EXPECT_NE(what.find("include cycle"), std::string::npos) << what;
}

TEST(ParamRegistry, CliSelectionOverridesSweepSpec)
{
    fs::path sweep = tempFile(
        "grid2.json",
        "{\"schemes\": [\"baseline\", \"Oracle\"],"
        " \"workloads\": [\"lbm\"]}\n");
    std::string sweepArg = "sweep=" + sweep.string();
    ResolvedExperiment r =
        resolve({sweepArg.c_str(), "scheme=BLP", "workload=astar"});
    EXPECT_EQ(r.schemes, (std::vector<SchemeKind>{SchemeKind::Blp}));
    EXPECT_EQ(r.workloads, (std::vector<std::string>{"astar"}));
}

TEST(ParamRegistry, WorkloadAndSchemeValidationSuggests)
{
    EXPECT_NE(errorOf({"workload=lbmm"}).find("did you mean 'lbm'?"),
              std::string::npos);
    EXPECT_NE(errorOf({"scheme=LADDER-Hybird"})
                  .find("did you mean 'LADDER-Hybrid'?"),
              std::string::npos);
    EXPECT_NE(errorOf({"workloads="}).find("empty workload selection"),
              std::string::npos);
}

TEST(ParamRegistry, CsvSelectionsParse)
{
    ResolvedExperiment r = resolve(
        {"schemes=baseline,BLP,Oracle", "workloads=mix-1,mix-2"});
    EXPECT_EQ(r.schemes,
              (std::vector<SchemeKind>{SchemeKind::Baseline,
                                       SchemeKind::Blp,
                                       SchemeKind::Oracle}));
    EXPECT_EQ(r.workloads,
              (std::vector<std::string>{"mix-1", "mix-2"}));
}

TEST(ParamRegistry, PositionalArgumentIsRejected)
{
    EXPECT_NE(errorOf({"oops"}).find("unexpected argument 'oops'"),
              std::string::npos);
}

TEST(ParamRegistry, DuplicateConfigOrSweepIsRejected)
{
    fs::path a = tempFile("a.json", "{}\n");
    fs::path b = tempFile("b.json", "{}\n");
    std::string argA = "config=" + a.string();
    std::string argB = "config=" + b.string();
    EXPECT_NE(errorOf({argA.c_str(), argB.c_str()})
                  .find("config= given twice"),
              std::string::npos);
}

TEST(ParamRegistry, DumpAndHelpFlagsAreRecognized)
{
    EXPECT_TRUE(resolve({"--dump-config"}).dumpRequested);
    EXPECT_TRUE(resolve({"--help-config"}).helpRequested);
    EXPECT_FALSE(resolve({}).dumpRequested);
}

TEST(ParamRegistry, ManifestScopeExcludesOutputAndVolatileKnobs)
{
    ExperimentConfig cfg;
    cfg.statsJsonDir = "/tmp/somewhere";
    cfg.jobs = 8;
    std::ostringstream os;
    JsonWriter json(os);
    experimentRegistry().dumpJson(
        cfg, json, ParamRegistry<ExperimentConfig>::Scope::Manifest);
    JsonValue doc = parseJson(os.str());
    ASSERT_TRUE(doc.isObject());
    // Output locations and parallelism cannot leak into manifests, or
    // byte-identity across output dirs and jobs= values would break.
    EXPECT_FALSE(doc.has("stats-json"));
    EXPECT_FALSE(doc.has("trace-out"));
    EXPECT_FALSE(doc.has("jobs"));
    EXPECT_FALSE(doc.has("volatile-manifest"));
    EXPECT_FALSE(doc.has("stats"));
    // Simulation-affecting parameters are all present.
    EXPECT_TRUE(doc.has("measure"));
    EXPECT_TRUE(doc.has("xbar.rows"));
    EXPECT_TRUE(doc.has("ctrl.drain-high"));
    EXPECT_TRUE(doc.has("wear.psi"));
}

TEST(ParamRegistry, PaperScaleSetterAppliesTable2)
{
    ResolvedExperiment r = resolve({"sys.paper-scale=true"});
    EXPECT_TRUE(r.config.system.paperScale);
    EXPECT_EQ(r.config.system.caches.l2.sizeBytes,
              std::size_t(4) * 1024 * 1024);
    EXPECT_EQ(r.config.system.caches.l3.sizeBytes,
              std::size_t(32) * 1024 * 1024);
    EXPECT_DOUBLE_EQ(r.config.system.workingSetScale, 8.0);

    // Later keys can still override individual fields.
    ResolvedExperiment r2 = resolve(
        {"sys.paper-scale=true", "cache.l3-bytes=16777216"});
    EXPECT_EQ(r2.config.system.caches.l3.sizeBytes,
              std::size_t(16) * 1024 * 1024);
}

TEST(ParamRegistry, SystemTemplateReachesEveryCell)
{
    ResolvedExperiment r = resolve(
        {"ctrl.write-queue=128", "geom.channels=4",
         "xbar.selected-cells=16"});
    SystemConfig sys =
        makeSystemConfig(SchemeKind::Baseline, "lbm", r.config);
    EXPECT_EQ(sys.controller.writeQueueEntries, 128u);
    EXPECT_EQ(sys.geometry.channels, 4u);
    EXPECT_EQ(sys.crossbar.selectedCells, 16u);
}

TEST(ParamRegistry, CommittedExampleConfigsResolve)
{
    const fs::path dir = fs::path(LADDER_EXAMPLES_DIR) / "configs";
    std::string quick = "config=" + (dir / "ci-quick.json").string();
    ResolvedExperiment r = resolve({quick.c_str()});
    EXPECT_EQ(r.config.warmupInstr, 60000u);
    EXPECT_EQ(r.config.measureInstr, 40000u);
    EXPECT_EQ(r.config.epochCycles, 10000u);

    std::string paper =
        "config=" + (dir / "paper-table2.json").string();
    ResolvedExperiment p = resolve({paper.c_str()});
    EXPECT_TRUE(p.config.system.paperScale);
    EXPECT_EQ(p.config.measureInstr, 500000000u);

    std::string sweep = "sweep=" + (dir / "ci-sweep.json").string();
    ResolvedExperiment s = resolve({sweep.c_str()});
    EXPECT_EQ(s.schemes,
              (std::vector<SchemeKind>{SchemeKind::Baseline,
                                       SchemeKind::LadderHybrid}));
    EXPECT_EQ(s.workloads, (std::vector<std::string>{"lbm",
                                                     "astar"}));
    EXPECT_EQ(s.config.measureInstr, 40000u);
}

TEST(ParamRegistry, FileAndCliRunsAreByteIdenticalAtAnyJobs)
{
    ASSERT_TRUE(pinnedDescribe);
    const fs::path base =
        fs::path(::testing::TempDir()) / "ladder_registry_runs";
    fs::remove_all(base);

    // One grid, two spellings: everything in files vs everything on
    // the command line, at different jobs= values. The emitted
    // stats.json and sweep.json must agree byte for byte.
    fs::path spec = tempFile(
        "equiv-sweep.json",
        "{\"schemes\": [\"baseline\", \"LADDER-Hybrid\"],\n"
        " \"workloads\": [\"lbm\"],\n"
        " \"params\": {\"warmup\": 6000, \"measure\": 2000,\n"
        "              \"cache-scale\": 0.0625,\n"
        "              \"epoch-cycles\": 10000}}\n");
    std::string sweepArg = "sweep=" + spec.string();
    std::string statsA =
        "stats-json=" + (base / "files").string();
    ResolvedExperiment fromFiles =
        resolve({sweepArg.c_str(), statsA.c_str(), "jobs=1"});

    std::string statsB = "stats-json=" + (base / "cli").string();
    ResolvedExperiment fromCli = resolve(
        {"schemes=baseline,LADDER-Hybrid", "workloads=lbm",
         "warmup=6000", "measure=2000", "cache-scale=0.0625",
         "epoch-cycles=10000", statsB.c_str(), "jobs=2"});

    runMatrixParallel(fromFiles.schemes, fromFiles.workloads,
                      fromFiles.config);
    runMatrixParallel(fromCli.schemes, fromCli.workloads,
                      fromCli.config);

    for (const char *run : {"baseline__lbm", "LADDER-Hybrid__lbm"}) {
        std::string a =
            slurp(base / "files" / run / "stats.json");
        std::string b = slurp(base / "cli" / run / "stats.json");
        ASSERT_FALSE(a.empty()) << run;
        EXPECT_EQ(a, b) << run;
        // The embedded resolved_config block is present and carries
        // the layered values.
        JsonValue doc = parseJson(a);
        ASSERT_TRUE(doc.has("resolved_config")) << run;
        EXPECT_DOUBLE_EQ(
            doc.at("resolved_config").at("measure").number, 2000.0);
        EXPECT_DOUBLE_EQ(doc.at("schema_version").number, 2.0);
    }
    EXPECT_EQ(slurp(base / "files" / "sweep.json"),
              slurp(base / "cli" / "sweep.json"));

    fs::remove_all(base);
}

// ---------------------------------------------------------------
// Per-cell overrides ("cells" in sweep specs)
// ---------------------------------------------------------------

TEST(ParamRegistry, SweepCellsParseValidateAndStringify)
{
    fs::path sweep = tempFile(
        "cells.json",
        "{\"schemes\": [\"baseline\", \"LADDER-Hybrid\"],\n"
        " \"workloads\": [\"lbm\", \"kv-log\"],\n"
        " \"cells\": [\n"
        "  {\"scheme\": \"baseline\", \"workload\": \"lbm\",\n"
        "   \"params\": {\"epoch-cycles\": 5000,\n"
        "               \"trace-stream\": true}},\n"
        "  {\"workload\": \"kv-log\",\n"
        "   \"params\": {\"trace-chunk\": 128}}\n"
        " ]}\n");
    std::string sweepArg = "sweep=" + sweep.string();
    ResolvedExperiment r = resolve({sweepArg.c_str()});
    ASSERT_EQ(r.config.cellOverrides.size(), 2u);
    const SweepCellOverride &first = r.config.cellOverrides[0];
    EXPECT_EQ(first.scheme, "baseline");
    EXPECT_EQ(first.workload, "lbm");
    ASSERT_EQ(first.params.size(), 2u);
    EXPECT_EQ(first.params[0].first, "epoch-cycles");
    EXPECT_EQ(first.params[0].second, "5000"); // stringified number
    EXPECT_EQ(first.params[1].second, "true"); // stringified bool
    const SweepCellOverride &second = r.config.cellOverrides[1];
    EXPECT_EQ(second.scheme, "*"); // omitted half defaults to wildcard
    EXPECT_EQ(second.workload, "kv-log");
    // Overrides are per-cell only: the base config is untouched.
    EXPECT_EQ(r.config.epochCycles, 0u);
    EXPECT_EQ(r.config.traceChunkRecords, 64u * 1024);
}

TEST(ParamRegistry, SweepCellsRejectBadShapes)
{
    auto sweepError = [](const char *name, const std::string &json) {
        fs::path file = tempFile(name, json);
        std::string arg = "sweep=" + file.string();
        return errorOf({arg.c_str()});
    };
    // Unknown cell key, with a near-miss suggestion.
    EXPECT_NE(sweepError("c1.json",
                         "{\"cells\": [{\"schem\": \"baseline\", "
                         "\"params\": {}}]}")
                  .find("unknown cell key 'schem'"),
              std::string::npos);
    // Unknown parameter inside a cell fails at resolve, not mid-sweep.
    EXPECT_NE(sweepError("c2.json",
                         "{\"cells\": [{\"params\": "
                         "{\"measrue\": 5}}]}")
                  .find("measure"),
              std::string::npos);
    // Out-of-range value inside a cell fails at resolve too.
    EXPECT_NE(sweepError("c3.json",
                         "{\"cells\": [{\"params\": "
                         "{\"granularity\": 0}}]}")
                  .find("out of range"),
              std::string::npos);
    // Bad scheme / workload names are validated like the top-level
    // lists (near-miss included).
    EXPECT_NE(sweepError("c4.json",
                         "{\"cells\": [{\"scheme\": \"basline\", "
                         "\"params\": {}}]}")
                  .find("unknown scheme"),
              std::string::npos);
    EXPECT_NE(sweepError("c5.json",
                         "{\"cells\": [{\"workload\": \"dnn-updat\", "
                         "\"params\": {}}]}")
                  .find("dnn-update"),
              std::string::npos);
    // Structural errors: non-array cells, non-object entry, missing
    // params, non-scalar param value.
    EXPECT_NE(sweepError("c6.json", "{\"cells\": {}}")
                  .find("must be an array"),
              std::string::npos);
    EXPECT_NE(sweepError("c7.json", "{\"cells\": [7]}")
                  .find("must be an object"),
              std::string::npos);
    EXPECT_NE(sweepError("c8.json",
                         "{\"cells\": [{\"scheme\": \"baseline\"}]}")
                  .find("needs a 'params' object"),
              std::string::npos);
    EXPECT_NE(sweepError("c9.json",
                         "{\"cells\": [{\"params\": "
                         "{\"epoch-cycles\": [1]}}]}")
                  .find("must be a scalar"),
              std::string::npos);
}

TEST(ParamRegistry, SweepCellsPrecedenceAcrossTheFullStack)
{
    // One matching and one non-matching cell, plus a CLI assignment
    // that collides with a cell param. Expected layering per cell:
    // defaults < sweep params < cells < CLI.
    fs::path sweep = tempFile(
        "cells-prec.json",
        "{\"params\": {\"epoch-cycles\": 10000},\n"
        " \"cells\": [\n"
        "  {\"scheme\": \"baseline\", \"workload\": \"lbm\",\n"
        "   \"params\": {\"epoch-cycles\": 5000,\n"
        "               \"trace-chunk\": 128}}\n"
        " ]}\n");
    fs::path base = fs::path(::testing::TempDir()) / "ladder_cells";
    fs::remove_all(base);
    std::string sweepArg = "sweep=" + sweep.string();
    std::string statsArg = "stats-json=" + base.string();
    ResolvedExperiment r = resolve(
        {sweepArg.c_str(), statsArg.c_str(), "warmup=4000",
         "measure=1500", "cache-scale=0.0625", "epoch-cycles=2500"});
    // The colliding CLI assignment is recorded for re-application.
    ASSERT_FALSE(r.config.cliAssignments.empty());

    runOne(SchemeKind::Baseline, "lbm", r.config);
    runOne(SchemeKind::LadderHybrid, "lbm", r.config);

    JsonValue matched =
        parseJson(slurp(base / "baseline__lbm" / "stats.json"));
    JsonValue unmatched =
        parseJson(slurp(base / "LADDER-Hybrid__lbm" / "stats.json"));
    ASSERT_TRUE(matched.isObject());
    ASSERT_TRUE(unmatched.isObject());
    const JsonValue &mc = matched.at("resolved_config");
    const JsonValue &uc = unmatched.at("resolved_config");
    // Matched cell: cell beats sweep params, CLI beats the cell.
    EXPECT_DOUBLE_EQ(mc.at("trace-chunk").number, 128.0);
    EXPECT_DOUBLE_EQ(mc.at("epoch-cycles").number, 2500.0);
    // Non-matching cell: no cell params, CLI value as resolved.
    EXPECT_DOUBLE_EQ(uc.at("trace-chunk").number, 65536.0);
    EXPECT_DOUBLE_EQ(uc.at("epoch-cycles").number, 2500.0);

    fs::remove_all(base);
}

} // namespace
} // namespace ladder
