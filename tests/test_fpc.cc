/** @file Tests for the FPC compressor used by Split-reset. */

#include <gtest/gtest.h>

#include <cstring>

#include "common/rng.hh"
#include "schemes/fpc.hh"

namespace ladder
{
namespace
{

LineData
lineOfWords(std::uint32_t word)
{
    LineData line;
    for (unsigned i = 0; i < lineBytes / 4; ++i)
        std::memcpy(line.data() + i * 4, &word, 4);
    return line;
}

TEST(Fpc, ZeroLineIsTiny)
{
    LineData zeros = filledLine(0x00);
    // Zero runs share prefixes: two (prefix + runlen) tokens per 8
    // words.
    EXPECT_LE(fpcCompressedBits(zeros), 16u * 6);
    EXPECT_TRUE(fpcCompressible(zeros));
}

TEST(Fpc, SmallSignedIntsCompress)
{
    EXPECT_TRUE(fpcCompressible(lineOfWords(7)));
    EXPECT_TRUE(fpcCompressible(
        lineOfWords(static_cast<std::uint32_t>(-3))));
    EXPECT_TRUE(fpcCompressible(lineOfWords(100)));
    // 16-bit sign-extended: 19 bits/word, compressed but above the
    // half-line threshold.
    EXPECT_EQ(fpcCompressedBits(
                  lineOfWords(static_cast<std::uint32_t>(-30000))),
              16u * 19);
}

TEST(Fpc, RepeatedBytesCompress)
{
    EXPECT_TRUE(fpcCompressible(lineOfWords(0xabababab)));
}

TEST(Fpc, HalfwordZeroPaddedCompresses)
{
    EXPECT_EQ(fpcCompressedBits(lineOfWords(0x12340000)), 16u * 19);
    EXPECT_TRUE(fpcCompressible(lineOfWords(0x12340000), 40));
}

TEST(Fpc, RandomDataDoesNotCompress)
{
    Rng rng(3);
    LineData line;
    for (auto &byte : line)
        byte = static_cast<std::uint8_t>(rng.nextBounded(256));
    // 16 words x (3 + 32) bits > 512 bits.
    EXPECT_FALSE(fpcCompressible(line));
}

TEST(Fpc, UncompressedWordCost)
{
    LineData line = lineOfWords(0x9e3779b9);
    EXPECT_EQ(fpcCompressedBits(line), 16u * (3 + 32));
}

TEST(Fpc, MixedLineThreshold)
{
    // Half compressible, half random: lands near the threshold.
    Rng rng(4);
    LineData line = filledLine(0x00);
    for (unsigned i = lineBytes / 2; i < lineBytes; ++i)
        line[i] = static_cast<std::uint8_t>(rng.nextBounded(256));
    unsigned bits = fpcCompressedBits(line);
    EXPECT_GT(bits, 8u * 35); // second half mostly uncompressed
    EXPECT_LT(bits, 16u * 35);
}

TEST(Fpc, ThresholdParameter)
{
    LineData line = lineOfWords(0x00007fff); // 16-bit sign-extended
    unsigned bits = fpcCompressedBits(line);
    EXPECT_EQ(bits, 16u * (3 + 16));
    EXPECT_TRUE(fpcCompressible(line, 40));
    EXPECT_FALSE(fpcCompressible(line, 30));
}

TEST(Fpc, ZeroRunLengthCapped)
{
    // A full line of zeros uses ceil(16/8) = 2 run tokens.
    LineData zeros = filledLine(0x00);
    EXPECT_EQ(fpcCompressedBits(zeros), 2u * 6);
}

} // namespace
} // namespace ladder
