/**
 * @file
 * Regression gate for the parallel sweep's determinism guarantee:
 * runMatrixParallel must produce bit-identical SimResults regardless
 * of the job count. A small (3 scheme x 3 workload) matrix is run at
 * jobs=1 (the serial path) and jobs=8 (heavily oversubscribed on most
 * machines, maximizing scheduling permutations) and every result
 * field is compared at the bit level.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <set>
#include <string>

#include "sim/experiment.hh"
#include "sim/stats_export.hh"

namespace ladder
{
namespace
{

ExperimentConfig
quickConfig(unsigned jobs)
{
    ExperimentConfig cfg;
    cfg.warmupInstr = 60'000;
    cfg.measureInstr = 40'000;
    cfg.cacheScale = 1.0 / 16.0;
    cfg.jobs = jobs;
    return cfg;
}

/** Bit-level double equality: no tolerance, and NaN == NaN. */
::testing::AssertionResult
bitsEqual(double a, double b)
{
    std::uint64_t ba, bb;
    std::memcpy(&ba, &a, sizeof(ba));
    std::memcpy(&bb, &b, sizeof(bb));
    if (ba == bb)
        return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure()
           << a << " and " << b << " differ in bits (0x" << std::hex
           << ba << " vs 0x" << bb << ")";
}

void
expectBitIdentical(const SimResult &a, const SimResult &b)
{
    ASSERT_EQ(a.coreIpc.size(), b.coreIpc.size());
    for (std::size_t c = 0; c < a.coreIpc.size(); ++c)
        EXPECT_TRUE(bitsEqual(a.coreIpc[c], b.coreIpc[c]))
            << "coreIpc[" << c << "]";
    EXPECT_TRUE(bitsEqual(a.ipc, b.ipc)) << "ipc";
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_TRUE(bitsEqual(a.elapsedNs, b.elapsedNs)) << "elapsedNs";
    EXPECT_TRUE(bitsEqual(a.avgReadLatencyNs, b.avgReadLatencyNs))
        << "avgReadLatencyNs";
    EXPECT_TRUE(bitsEqual(a.avgWriteServiceNs, b.avgWriteServiceNs))
        << "avgWriteServiceNs";
    EXPECT_TRUE(bitsEqual(a.avgWriteTwrNs, b.avgWriteTwrNs))
        << "avgWriteTwrNs";
    EXPECT_EQ(a.dataReads, b.dataReads);
    EXPECT_EQ(a.metadataReads, b.metadataReads);
    EXPECT_EQ(a.smbReads, b.smbReads);
    EXPECT_EQ(a.dataWrites, b.dataWrites);
    EXPECT_EQ(a.metadataWrites, b.metadataWrites);
    EXPECT_TRUE(bitsEqual(a.readEnergyPj, b.readEnergyPj))
        << "readEnergyPj";
    EXPECT_TRUE(bitsEqual(a.writeEnergyPj, b.writeEnergyPj))
        << "writeEnergyPj";
    EXPECT_TRUE(bitsEqual(a.fnwFlips, b.fnwFlips)) << "fnwFlips";
    EXPECT_TRUE(bitsEqual(a.fnwCancelled, b.fnwCancelled))
        << "fnwCancelled";
    EXPECT_TRUE(
        bitsEqual(a.estCounterDiffMean, b.estCounterDiffMean))
        << "estCounterDiffMean";
    EXPECT_TRUE(bitsEqual(a.estimatedCwMean, b.estimatedCwMean))
        << "estimatedCwMean";
    EXPECT_TRUE(bitsEqual(a.accurateCwMean, b.accurateCwMean))
        << "accurateCwMean";
    EXPECT_TRUE(bitsEqual(a.spillInsertions, b.spillInsertions))
        << "spillInsertions";
}

TEST(ParallelDeterminism, SerialAndParallelSweepsAreBitIdentical)
{
    // SplitReset exercises the memoized half-model cache and
    // LadderHybrid the estimation path — the components with shared
    // state that parallelism could have perturbed.
    const std::vector<SchemeKind> schemes = {
        SchemeKind::Baseline, SchemeKind::SplitReset,
        SchemeKind::LadderHybrid};
    const std::vector<std::string> workloads = {"astar", "lbm",
                                                "mcf"};

    Matrix serial =
        runMatrixParallel(schemes, workloads, quickConfig(1));
    Matrix parallel =
        runMatrixParallel(schemes, workloads, quickConfig(8));

    ASSERT_EQ(serial.results.size(), workloads.size() * schemes.size());
    ASSERT_EQ(serial.results.size(), parallel.results.size());
    for (const auto &workload : workloads) {
        for (SchemeKind kind : schemes) {
            SCOPED_TRACE(schemeKindName(kind) + " / " + workload);
            expectBitIdentical(serial.at(kind, workload),
                               parallel.at(kind, workload));
        }
    }
}

TEST(ParallelDeterminism, NoTwoCellsShareATraceFilePath)
{
    // Parallel sweep cells stream traces concurrently, so two cells
    // mapping to the same file would corrupt each other. The path
    // derivation must be injective over (scheme, workload) — even for
    // adversarial workload names that sanitize near each other.
    ExperimentConfig cfg = quickConfig(8);
    cfg.traceOutDir = "traces";
    cfg.traceFormat = "bin2";
    const std::vector<std::string> workloads = {
        "lbm",   "mix-1", "a/b",  "a_b",  "a%2Fb",
        "a%b",   "a.b",   "A/B",  "..",   "trace.bin",
    };
    std::set<std::string> paths;
    for (SchemeKind kind : allSchemeKinds()) {
        for (const auto &workload : workloads) {
            std::string path =
                traceFilePath(cfg, kind, workload).string();
            EXPECT_TRUE(paths.insert(path).second)
                << "trace path collision on " << path << " ("
                << schemeKindName(kind) << " / " << workload << ")";
        }
    }
    EXPECT_EQ(paths.size(),
              allSchemeKinds().size() * workloads.size());

    // Sanitized run directories are always a single path component
    // (the scheme prefix additionally guarantees none can ever be a
    // bare "." or ".." traversal).
    for (const auto &workload : workloads) {
        std::string dir = runDirName(SchemeKind::Baseline, workload);
        EXPECT_EQ(dir.find('/'), std::string::npos) << dir;
        EXPECT_EQ(dir.find('\\'), std::string::npos) << dir;
    }
    // Plain names keep their historical readable form.
    EXPECT_EQ(runDirName(SchemeKind::Baseline, "mix-1"),
              schemeKindName(SchemeKind::Baseline) + "__mix-1");
}

TEST(ParallelDeterminism, RepeatedParallelSweepsAreBitIdentical)
{
    // Two parallel runs of the same matrix agree with each other,
    // whatever the scheduler did in between.
    const std::vector<SchemeKind> schemes = {SchemeKind::LadderEst};
    const std::vector<std::string> workloads = {"libq", "cannl"};
    Matrix first =
        runMatrixParallel(schemes, workloads, quickConfig(4));
    Matrix second =
        runMatrixParallel(schemes, workloads, quickConfig(4));
    for (const auto &workload : workloads) {
        SCOPED_TRACE(workload);
        expectBitIdentical(first.at(SchemeKind::LadderEst, workload),
                           second.at(SchemeKind::LadderEst,
                                     workload));
    }
}

} // namespace
} // namespace ladder
