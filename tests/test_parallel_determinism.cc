/**
 * @file
 * Regression gate for the parallel sweep's determinism guarantee:
 * runMatrixParallel must produce bit-identical SimResults regardless
 * of the job count. A small (3 scheme x 3 workload) matrix is run at
 * jobs=1 (the serial path) and jobs=8 (heavily oversubscribed on most
 * machines, maximizing scheduling permutations) and every result
 * field is compared at the bit level.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

#include "sim/experiment.hh"

namespace ladder
{
namespace
{

ExperimentConfig
quickConfig(unsigned jobs)
{
    ExperimentConfig cfg;
    cfg.warmupInstr = 60'000;
    cfg.measureInstr = 40'000;
    cfg.cacheScale = 1.0 / 16.0;
    cfg.jobs = jobs;
    return cfg;
}

/** Bit-level double equality: no tolerance, and NaN == NaN. */
::testing::AssertionResult
bitsEqual(double a, double b)
{
    std::uint64_t ba, bb;
    std::memcpy(&ba, &a, sizeof(ba));
    std::memcpy(&bb, &b, sizeof(bb));
    if (ba == bb)
        return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure()
           << a << " and " << b << " differ in bits (0x" << std::hex
           << ba << " vs 0x" << bb << ")";
}

void
expectBitIdentical(const SimResult &a, const SimResult &b)
{
    ASSERT_EQ(a.coreIpc.size(), b.coreIpc.size());
    for (std::size_t c = 0; c < a.coreIpc.size(); ++c)
        EXPECT_TRUE(bitsEqual(a.coreIpc[c], b.coreIpc[c]))
            << "coreIpc[" << c << "]";
    EXPECT_TRUE(bitsEqual(a.ipc, b.ipc)) << "ipc";
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_TRUE(bitsEqual(a.elapsedNs, b.elapsedNs)) << "elapsedNs";
    EXPECT_TRUE(bitsEqual(a.avgReadLatencyNs, b.avgReadLatencyNs))
        << "avgReadLatencyNs";
    EXPECT_TRUE(bitsEqual(a.avgWriteServiceNs, b.avgWriteServiceNs))
        << "avgWriteServiceNs";
    EXPECT_TRUE(bitsEqual(a.avgWriteTwrNs, b.avgWriteTwrNs))
        << "avgWriteTwrNs";
    EXPECT_EQ(a.dataReads, b.dataReads);
    EXPECT_EQ(a.metadataReads, b.metadataReads);
    EXPECT_EQ(a.smbReads, b.smbReads);
    EXPECT_EQ(a.dataWrites, b.dataWrites);
    EXPECT_EQ(a.metadataWrites, b.metadataWrites);
    EXPECT_TRUE(bitsEqual(a.readEnergyPj, b.readEnergyPj))
        << "readEnergyPj";
    EXPECT_TRUE(bitsEqual(a.writeEnergyPj, b.writeEnergyPj))
        << "writeEnergyPj";
    EXPECT_TRUE(bitsEqual(a.fnwFlips, b.fnwFlips)) << "fnwFlips";
    EXPECT_TRUE(bitsEqual(a.fnwCancelled, b.fnwCancelled))
        << "fnwCancelled";
    EXPECT_TRUE(
        bitsEqual(a.estCounterDiffMean, b.estCounterDiffMean))
        << "estCounterDiffMean";
    EXPECT_TRUE(bitsEqual(a.estimatedCwMean, b.estimatedCwMean))
        << "estimatedCwMean";
    EXPECT_TRUE(bitsEqual(a.accurateCwMean, b.accurateCwMean))
        << "accurateCwMean";
    EXPECT_TRUE(bitsEqual(a.spillInsertions, b.spillInsertions))
        << "spillInsertions";
}

TEST(ParallelDeterminism, SerialAndParallelSweepsAreBitIdentical)
{
    // SplitReset exercises the memoized half-model cache and
    // LadderHybrid the estimation path — the components with shared
    // state that parallelism could have perturbed.
    const std::vector<SchemeKind> schemes = {
        SchemeKind::Baseline, SchemeKind::SplitReset,
        SchemeKind::LadderHybrid};
    const std::vector<std::string> workloads = {"astar", "lbm",
                                                "mcf"};

    Matrix serial =
        runMatrixParallel(schemes, workloads, quickConfig(1));
    Matrix parallel =
        runMatrixParallel(schemes, workloads, quickConfig(8));

    ASSERT_EQ(serial.results.size(), workloads.size() * schemes.size());
    ASSERT_EQ(serial.results.size(), parallel.results.size());
    for (const auto &workload : workloads) {
        for (SchemeKind kind : schemes) {
            SCOPED_TRACE(schemeKindName(kind) + " / " + workload);
            expectBitIdentical(serial.at(kind, workload),
                               parallel.at(kind, workload));
        }
    }
}

TEST(ParallelDeterminism, RepeatedParallelSweepsAreBitIdentical)
{
    // Two parallel runs of the same matrix agree with each other,
    // whatever the scheduler did in between.
    const std::vector<SchemeKind> schemes = {SchemeKind::LadderEst};
    const std::vector<std::string> workloads = {"libq", "cannl"};
    Matrix first =
        runMatrixParallel(schemes, workloads, quickConfig(4));
    Matrix second =
        runMatrixParallel(schemes, workloads, quickConfig(4));
    for (const auto &workload : workloads) {
        SCOPED_TRACE(workload);
        expectBitIdentical(first.at(SchemeKind::LadderEst, workload),
                           second.at(SchemeKind::LadderEst,
                                     workload));
    }
}

} // namespace
} // namespace ladder
