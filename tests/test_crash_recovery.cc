/**
 * @file
 * Tests for the §7 lazy LRS-metadata correction: after a simulated
 * crash every estimate is pessimized to the maximum, stays safe, and
 * re-tightens as blocks are rewritten.
 */

#include <gtest/gtest.h>

#include <memory>

#include "common/rng.hh"
#include "ctrl/controller.hh"
#include "schemes/factory.hh"
#include "schemes/ladder_schemes.hh"

namespace ladder
{
namespace
{

struct Rig
{
    EventQueue events;
    MemoryGeometry geo;
    BackingStore store;
    const TimingModel &timing;
    std::shared_ptr<MetadataLayout> layout;
    std::shared_ptr<WriteScheme> scheme;
    std::unique_ptr<MemoryController> ctrl;

    explicit Rig(SchemeKind kind)
        : store(geo, true, 0.0),
          timing(cachedTimingModel(CrossbarParams{}))
    {
        AddressMap map(geo);
        layout = std::make_shared<MetadataLayout>(
            geo, map.totalPages() * 3 / 4);
        scheme = makeScheme(kind, CrossbarParams{}, layout, {});
        ctrl = std::make_unique<MemoryController>(
            events, ControllerConfig{}, geo, 0, store, timing,
            scheme);
    }

    double
    writeAndGetTwr(Addr addr, const LineData &data)
    {
        ctrl->writeLatencyOnlyNs.reset();
        ctrl->enqueueWrite(addr, data);
        events.runUntil();
        return ctrl->writeLatencyOnlyNs.max();
    }
};

Addr
ch0Addr()
{
    MemoryGeometry geo;
    AddressMap map(geo);
    for (std::uint64_t p = 0;; ++p) {
        if (map.decode(p * MemoryGeometry::pageBytes).channel == 0)
            return p * MemoryGeometry::pageBytes;
    }
}

TEST(CrashRecovery, EstimatesPessimizedThenReTightened)
{
    Rig rig(SchemeKind::LadderEst);
    auto *est = dynamic_cast<LadderEstScheme *>(rig.scheme.get());
    ASSERT_NE(est, nullptr);
    Addr page = ch0Addr();

    LineData sparse = filledLine(0x00);
    sparse[0] = 0x01;
    double before = rig.writeAndGetTwr(page, sparse);

    est->crashRecover();
    // Immediately after recovery the same write pays the worst-case
    // content latency for its location.
    double recovered =
        rig.writeAndGetTwr(page + lineBytes, sparse);
    EXPECT_GT(recovered, before);

    // Rewriting every block of the page tightens the estimate again.
    for (unsigned b = 0; b < 64; ++b)
        rig.writeAndGetTwr(page + b * lineBytes, sparse);
    double tightened = rig.writeAndGetTwr(page, sparse);
    EXPECT_LE(tightened, before + 1e-9);
}

TEST(CrashRecovery, HybridPessimizesBothPrecisions)
{
    Rig rig(SchemeKind::LadderHybrid);
    auto *hybrid =
        dynamic_cast<LadderHybridScheme *>(rig.scheme.get());
    ASSERT_NE(hybrid, nullptr);
    MemoryGeometry geo;
    AddressMap map(geo);
    // One near (low-precision) and one far (Est-precision) page.
    Addr nearAddr = invalidAddr, farAddr = invalidAddr;
    for (std::uint64_t p = 0; p < 8192; ++p) {
        BlockLocation loc = map.decode(p * MemoryGeometry::pageBytes);
        if (loc.channel != 0)
            continue;
        if (loc.wordline < hybrid->lowRows() &&
            nearAddr == invalidAddr)
            nearAddr = p * MemoryGeometry::pageBytes;
        if (loc.wordline >= hybrid->lowRows() &&
            farAddr == invalidAddr)
            farAddr = p * MemoryGeometry::pageBytes;
    }
    LineData sparse = filledLine(0x00);
    double nearBefore = rig.writeAndGetTwr(nearAddr, sparse);
    double farBefore = rig.writeAndGetTwr(farAddr, sparse);
    hybrid->crashRecover();
    EXPECT_GE(rig.writeAndGetTwr(nearAddr + lineBytes, sparse),
              nearBefore - 1e-9);
    EXPECT_GT(rig.writeAndGetTwr(farAddr + lineBytes, sparse),
              farBefore);
}

TEST(CrashRecovery, DataIntegrityUnaffected)
{
    Rig rig(SchemeKind::LadderEst);
    auto *est = dynamic_cast<LadderEstScheme *>(rig.scheme.get());
    Addr addr = ch0Addr() + 5 * lineBytes;
    Rng rng(3);
    LineData data;
    for (auto &b : data)
        b = static_cast<std::uint8_t>(rng.nextBounded(256));
    rig.ctrl->enqueueWrite(addr, data);
    rig.events.runUntil();
    est->crashRecover();
    LineData out{};
    rig.ctrl->enqueueRead(addr, [&](const LineData &d, Tick) {
        out = d;
    });
    rig.events.runUntil();
    EXPECT_EQ(out, data);
}

} // namespace
} // namespace ladder
