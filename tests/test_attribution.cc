/**
 * @file
 * End-to-end tests for the causal latency-attribution pipeline: the
 * component-sum property across all nine schemes (the controller's
 * always-on exact-sum assert panics the run on any violation, so
 * completing these sweeps *is* the proof), per-component invariants
 * recovered from the written traces, the attribution-on vs -off byte
 * differential at the export layer, and the `ladder_blame` CLI's
 * table/diff output with its 0/1/2 exit contract.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/types.hh"
#include "ctrl/trace_reader.hh"
#include "schemes/factory.hh"
#include "sim/blame_query.hh"
#include "sim/experiment.hh"
#include "sim/stats_export.hh"

namespace fs = std::filesystem;

namespace ladder
{
namespace
{

ExperimentConfig
attrConfig(const std::string &traceDir)
{
    ExperimentConfig cfg;
    cfg.warmupInstr = 60'000;
    cfg.measureInstr = 40'000;
    cfg.cacheScale = 1.0 / 16.0;
    cfg.traceOutDir = traceDir;
    cfg.traceFormat = "csv";
    cfg.system.controller.attribution = true;
    return cfg;
}

std::string
slurp(const fs::path &path)
{
    std::ifstream is(path, std::ios::binary);
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

TEST(Attribution, ComponentInvariantsHoldAcrossAllNineSchemes)
{
    fs::path base =
        fs::path(::testing::TempDir()) / "ladder_attr_schemes";
    fs::remove_all(base);
    ExperimentConfig cfg = attrConfig((base / "trace").string());
    const Tick rcd = nsToTicks(cfg.system.controller.tRcdNs);

    for (SchemeKind kind : allSchemeKinds()) {
        // Any exact-sum violation panics inside the controller's
        // attributeDispatch, aborting this run.
        runOne(kind, "lbm", cfg);

        TraceReader reader;
        fs::path trace =
            base / "trace" / runDirName(kind, "lbm") / "trace.csv";
        ASSERT_TRUE(reader.open(trace.string()))
            << trace << ": " << reader.error();
        EXPECT_TRUE(reader.attribution());
        CtrlTraceRecord rec;
        std::uint64_t writes = 0;
        while (reader.next(rec)) {
            if (rec.kind != CtrlTraceRecord::Kind::Write)
                continue;
            ++writes;
            const std::string at = schemeKindName(kind) +
                                   " write @" +
                                   std::to_string(rec.tick);
            // Wait-side components are stall durations: never
            // negative, and bank stall cannot exceed the whole wait.
            EXPECT_GE(rec.attr.depTicks, 0) << at;
            EXPECT_GE(rec.attr.queueTicks, 0) << at;
            EXPECT_GE(rec.attr.bankTicks, 0) << at;
            // Activation is the configured tRCD, exactly.
            EXPECT_EQ(static_cast<Tick>(rec.attr.rcdTicks), rcd)
                << at;
            // Latency-side components telescope to the decided tWR;
            // the trace stores tWR as a float, so allow the 1-tick
            // round-off of nsToTicks(float) vs nsToTicks(double).
            const std::int64_t latencySide =
                std::int64_t{rec.attr.baseTicks} +
                rec.attr.locationTicks + rec.attr.contentTicks +
                rec.attr.schemeTicks;
            const std::int64_t twr = static_cast<std::int64_t>(
                nsToTicks(static_cast<double>(rec.latencyNs)));
            EXPECT_LE(latencySide > twr ? latencySide - twr
                                        : twr - latencySide,
                      1)
                << at << " latencySide=" << latencySide
                << " twr=" << twr;
            // The best-case floor is a real latency.
            EXPECT_GT(rec.attr.baseTicks, 0) << at;
        }
        EXPECT_TRUE(reader.ok()) << reader.error();
        EXPECT_GT(writes, 0u)
            << schemeKindName(kind) << ": property test is vacuous";
    }
    fs::remove_all(base);
}

TEST(Attribution, OnVsOffTraceByteDifferential)
{
    fs::path base =
        fs::path(::testing::TempDir()) / "ladder_attr_diff";
    fs::remove_all(base);

    ExperimentConfig on = attrConfig((base / "on").string());
    ExperimentConfig off = attrConfig((base / "off").string());
    off.system.controller.attribution = false;
    runOne(SchemeKind::LadderEst, "lbm", on);
    runOne(SchemeKind::LadderEst, "lbm", off);

    const std::string run =
        runDirName(SchemeKind::LadderEst, "lbm");
    std::istringstream onCsv(
        slurp(base / "on" / run / "trace.csv"));
    std::istringstream offCsv(
        slurp(base / "off" / run / "trace.csv"));

    // Same simulation, one optional block: every attribution row is
    // its attribution-off counterpart plus exactly the blame columns,
    // so stripping them recovers the off trace byte-for-byte.
    std::string onLine, offLine;
    std::size_t line = 0;
    while (std::getline(offCsv, offLine)) {
        ASSERT_TRUE(std::getline(onCsv, onLine)) << "line " << line;
        if (line == 0) {
            EXPECT_EQ(onLine.rfind(",scheme_ticks"),
                      onLine.size() - 13);
        } else {
            ASSERT_GT(onLine.size(), offLine.size());
            EXPECT_EQ(onLine.substr(0, offLine.size()), offLine)
                << "line " << line;
            EXPECT_EQ(onLine[offLine.size()], ',') << "line " << line;
        }
        ++line;
    }
    EXPECT_FALSE(std::getline(onCsv, onLine));
    EXPECT_GT(line, 1u);
    fs::remove_all(base);
}

TEST(Attribution, LadderBlameTableDiffAndExitContract)
{
    fs::path base =
        fs::path(::testing::TempDir()) / "ladder_attr_blame";
    fs::remove_all(base);

    ExperimentConfig cfg = attrConfig((base / "a" / "trace").string());
    runOne(SchemeKind::LadderEst, "lbm", cfg);
    // Injected blame shift: doubling tRCD doubles exactly the rcd
    // component's mean, which a 50% threshold must flag.
    ExperimentConfig shifted =
        attrConfig((base / "b" / "trace").string());
    shifted.system.controller.tRcdNs *= 2.0;
    runOne(SchemeKind::LadderEst, "lbm", shifted);
    // And a blame-free trace for the exit-2 load error.
    ExperimentConfig plain =
        attrConfig((base / "plain" / "trace").string());
    plain.system.controller.attribution = false;
    runOne(SchemeKind::LadderEst, "lbm", plain);

    const std::string a = (base / "a" / "trace").string();
    const std::string b = (base / "b" / "trace").string();

    // Table mode: exit 0 and one row per component, in csv too.
    std::ostringstream out, err;
    EXPECT_EQ(ladderBlameMain({a}, out, err), 0) << err.str();
    for (const char *component :
         {"dep", "queue", "bank", "rcd", "base", "location",
          "content", "scheme"})
        EXPECT_NE(out.str().find(component), std::string::npos)
            << out.str();
    out.str("");
    EXPECT_EQ(ladderBlameMain({a, "format=csv"}, out, err), 0);
    EXPECT_EQ(out.str().rfind(
                  "run,component,p50_ns,p99_ns,max_ns,mean_ns,"
                  "share_pct\n",
                  0),
              0u)
        << out.str();

    // Diff: self-diff is clean (0); the injected shift flags (1).
    out.str("");
    EXPECT_EQ(ladderBlameMain({"diff", a, a}, out, err), 0)
        << out.str();
    out.str("");
    EXPECT_EQ(
        ladderBlameMain({"diff", a, b, "threshold=0.5"}, out, err),
        1)
        << out.str();
    EXPECT_NE(out.str().find("BLAME SHIFT"), std::string::npos);

    // Usage and load errors: exit 2.
    out.str("");
    EXPECT_EQ(ladderBlameMain({}, out, err), 2);
    EXPECT_EQ(ladderBlameMain({"diff", a}, out, err), 2);
    EXPECT_EQ(
        ladderBlameMain({(base / "missing").string()}, out, err), 2);
    EXPECT_EQ(ladderBlameMain({"bogus=1", a}, out, err), 2);
    err.str("");
    EXPECT_EQ(
        ladderBlameMain({(base / "plain" / "trace").string()}, out,
                        err),
        2);
    EXPECT_NE(err.str().find("attribution"), std::string::npos)
        << err.str();
    fs::remove_all(base);
}

TEST(Attribution, ExportsByteIdenticalAcrossJobsAndChannelThreads)
{
    std::vector<SchemeKind> schemes = {SchemeKind::SplitReset,
                                       SchemeKind::LadderHybrid};
    std::vector<std::string> workloads = {"lbm"};
    fs::path base =
        fs::path(::testing::TempDir()) / "ladder_attr_jobs";
    fs::remove_all(base);

    auto sweep = [&](unsigned jobs, unsigned channelThreads,
                     const fs::path &dir) {
        ExperimentConfig cfg = attrConfig((dir / "trace").string());
        cfg.jobs = jobs;
        cfg.system.controller.channelThreads = channelThreads;
        cfg.traceFormat = "bin2";
        cfg.traceChunkRecords = 64;
        runMatrixParallel(schemes, workloads, cfg);
    };
    sweep(1, 1, base / "j1t1");
    sweep(8, 1, base / "j8t1");
    sweep(1, 3, base / "j1t3");

    for (SchemeKind kind : schemes) {
        const fs::path rel =
            fs::path("trace") / runDirName(kind, "lbm") /
            "trace.bin";
        const std::string reference = slurp(base / "j1t1" / rel);
        ASSERT_FALSE(reference.empty()) << rel;
        EXPECT_EQ(reference, slurp(base / "j8t1" / rel))
            << rel << " differs between jobs=1 and jobs=8";
        EXPECT_EQ(reference, slurp(base / "j1t3" / rel))
            << rel << " differs between channel-threads=1 and =3";
        TraceReader reader;
        ASSERT_TRUE(reader.openBuffer(reference)) << reader.error();
        EXPECT_TRUE(reader.attribution());
    }
    fs::remove_all(base);
}

} // namespace
} // namespace ladder
