/** @file Tests for the configuration store. */

#include <gtest/gtest.h>

#include "common/config.hh"

namespace ladder
{
namespace
{

TEST(Config, TypedRoundTrips)
{
    Config c;
    c.setInt("a", -42);
    c.setDouble("b", 2.5);
    c.setBool("c", true);
    c.set("d", "hello");
    EXPECT_EQ(c.getInt("a", 0), -42);
    EXPECT_DOUBLE_EQ(c.getDouble("b", 0.0), 2.5);
    EXPECT_TRUE(c.getBool("c", false));
    EXPECT_EQ(c.getString("d", ""), "hello");
}

TEST(Config, Fallbacks)
{
    Config c;
    EXPECT_EQ(c.getInt("missing", 7), 7);
    EXPECT_DOUBLE_EQ(c.getDouble("missing", 1.5), 1.5);
    EXPECT_FALSE(c.getBool("missing", false));
    EXPECT_EQ(c.getString("missing", "x"), "x");
    EXPECT_FALSE(c.has("missing"));
}

TEST(Config, ParseArgs)
{
    Config c;
    const char *argv[] = {"prog", "sim.instr=1000", "positional",
                          "x=hello world"};
    auto leftovers = c.parseArgs(4, argv);
    EXPECT_EQ(leftovers, std::vector<std::string>{"positional"});
    EXPECT_EQ(c.getInt("sim.instr", 0), 1000);
    EXPECT_EQ(c.getString("x", ""), "hello world");
}

TEST(Config, BadIntegerIsFatal)
{
    Config c;
    c.set("n", "abc");
    EXPECT_THROW(c.getInt("n", 0), std::runtime_error);
}

TEST(Config, BadBoolIsFatal)
{
    Config c;
    c.set("b", "maybe");
    EXPECT_THROW(c.getBool("b", false), std::runtime_error);
}

TEST(Config, BoolSpellings)
{
    Config c;
    c.set("a", "1");
    c.set("b", "no");
    c.set("d", "yes");
    EXPECT_TRUE(c.getBool("a", false));
    EXPECT_FALSE(c.getBool("b", true));
    EXPECT_TRUE(c.getBool("d", false));
}

TEST(Config, StrictParseAcceptsAllowedKeys)
{
    Config c;
    const char *argv[] = {"prog", "mode=dump", "limit=5",
                          "positional"};
    auto leftovers = c.parseArgs(
        4, argv, {"mode", "kind", "limit"});
    EXPECT_EQ(leftovers, std::vector<std::string>{"positional"});
    EXPECT_EQ(c.getString("mode", ""), "dump");
    EXPECT_EQ(c.getInt("limit", 0), 5);
}

TEST(Config, StrictParseRejectsUnknownKey)
{
    Config c;
    const char *argv[] = {"prog", "mde=dump"};
    try {
        c.parseArgs(2, argv, {"mode", "kind", "limit"});
        FAIL() << "expected fatal()";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("unknown key 'mde'"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("did you mean 'mode'"),
                  std::string::npos);
    }
}

TEST(Config, KeysSorted)
{
    Config c;
    c.setInt("z", 1);
    c.setInt("a", 2);
    c.setInt("m", 3);
    auto keys = c.keys();
    EXPECT_EQ(keys, (std::vector<std::string>{"a", "m", "z"}));
}

TEST(Config, OverwriteWins)
{
    Config c;
    c.setInt("k", 1);
    c.setInt("k", 2);
    EXPECT_EQ(c.getInt("k", 0), 2);
}

} // namespace
} // namespace ladder
